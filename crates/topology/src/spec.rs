//! Queue-policy specifications shared by all topology builders.

use ndp_net::queue::Policy;

/// Which switch service model the fabric uses. Capacities are expressed in
/// MTU-sized packets, the unit the paper uses throughout ("8 packet output
/// queues", "marking threshold 30 packets", ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueSpec {
    /// NDP dual queue: `data_cap_pkts` full packets + equal header budget.
    Ndp { data_cap_pkts: usize },
    /// Plain FIFO with optional ECN marking threshold.
    DropTail {
        cap_pkts: usize,
        ecn_thresh_pkts: Option<usize>,
    },
    /// Cut-payload FIFO (Figure 2 baseline).
    Cp { thresh_pkts: usize },
    /// PFC lossless with ECN (the DCQCN fabric).
    Lossless {
        cap_pkts: usize,
        xoff_pkts: usize,
        xon_pkts: usize,
        ecn_thresh_pkts: Option<usize>,
    },
}

impl QueueSpec {
    /// The paper's NDP default: eight packet data queues.
    pub fn ndp_default() -> QueueSpec {
        QueueSpec::Ndp { data_cap_pkts: 8 }
    }

    /// The paper's DCTCP fabric: 200-packet queues, 30-packet marking.
    pub fn dctcp_default() -> QueueSpec {
        QueueSpec::DropTail {
            cap_pkts: 200,
            ecn_thresh_pkts: Some(30),
        }
    }

    /// The paper's MPTCP/TCP fabric: 200-packet drop-tail queues.
    pub fn droptail_default() -> QueueSpec {
        QueueSpec::DropTail {
            cap_pkts: 200,
            ecn_thresh_pkts: None,
        }
    }

    /// The paper's DCQCN fabric: lossless Ethernet, 200-packet buffers,
    /// 20-packet ECN marking threshold.
    pub fn dcqcn_default() -> QueueSpec {
        QueueSpec::Lossless {
            cap_pkts: 200,
            xoff_pkts: 80,
            xon_pkts: 40,
            ecn_thresh_pkts: Some(20),
        }
    }

    /// pHost fabric: small drop-tail queues (8 packets), no ECN.
    pub fn phost_default() -> QueueSpec {
        QueueSpec::DropTail {
            cap_pkts: 8,
            ecn_thresh_pkts: None,
        }
    }

    /// Materialize the policy for a fabric queue with the given MTU.
    pub fn build(self, mtu: u32) -> Policy {
        let b = mtu as u64;
        match self {
            QueueSpec::Ndp { data_cap_pkts } => Policy::ndp(data_cap_pkts, mtu),
            QueueSpec::DropTail {
                cap_pkts,
                ecn_thresh_pkts,
            } => match ecn_thresh_pkts {
                Some(k) => Policy::droptail_ecn(cap_pkts as u64 * b, k as u64 * b),
                None => Policy::droptail(cap_pkts as u64 * b),
            },
            QueueSpec::Cp { thresh_pkts } => Policy::cp(thresh_pkts as u64 * b),
            QueueSpec::Lossless {
                cap_pkts,
                xoff_pkts,
                xon_pkts,
                ecn_thresh_pkts,
            } => match ecn_thresh_pkts {
                Some(k) => Policy::lossless_ecn(
                    cap_pkts as u64 * b,
                    xoff_pkts as u64 * b,
                    xon_pkts as u64 * b,
                    k as u64 * b,
                ),
                None => Policy::lossless(
                    cap_pkts as u64 * b,
                    xoff_pkts as u64 * b,
                    xon_pkts as u64 * b,
                ),
            },
        }
    }

    /// The same service model with its data capacity capped at `pkts`
    /// packets — shallow-buffer scenarios (the NetFPGA testbed's ~8
    /// jumbogram output queues) apply to every protocol that runs there,
    /// so the cap is a property of the scenario, not of the transport.
    /// Thresholds that scale with the buffer (ECN marking, PFC Xoff/Xon)
    /// are clamped to stay inside the new capacity.
    pub fn with_data_cap(self, pkts: usize) -> QueueSpec {
        match self {
            QueueSpec::Ndp { .. } => QueueSpec::Ndp {
                data_cap_pkts: pkts,
            },
            QueueSpec::DropTail {
                ecn_thresh_pkts, ..
            } => QueueSpec::DropTail {
                cap_pkts: pkts,
                ecn_thresh_pkts: ecn_thresh_pkts.map(|t| t.min(pkts)),
            },
            QueueSpec::Cp { .. } => QueueSpec::Cp { thresh_pkts: pkts },
            QueueSpec::Lossless {
                xoff_pkts,
                xon_pkts,
                ecn_thresh_pkts,
                ..
            } => QueueSpec::Lossless {
                cap_pkts: pkts,
                xoff_pkts: xoff_pkts.min(pkts),
                xon_pkts: xon_pkts.min(pkts),
                ecn_thresh_pkts: ecn_thresh_pkts.map(|t| t.min(pkts)),
            },
        }
    }

    /// Host NIC policy matching this fabric. NDP NICs keep the priority
    /// (header-first) behaviour but with a deep data queue — hosts never
    /// trim their own traffic; other fabrics get a deep drop-tail NIC.
    pub fn build_host_nic(self, mtu: u32) -> Policy {
        match self {
            QueueSpec::Ndp { .. } | QueueSpec::Cp { .. } => Policy::ndp(4096, mtu),
            _ => Policy::droptail(4096 * mtu as u64),
        }
    }

    pub fn is_lossless(self) -> bool {
        matches!(self, QueueSpec::Lossless { .. })
    }

    pub fn is_ndp(self) -> bool {
        matches!(self, QueueSpec::Ndp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_data_cap_preserves_service_model() {
        // NDP stays NDP, drop-tail stays drop-tail; only capacities move.
        assert_eq!(
            QueueSpec::ndp_default().with_data_cap(8),
            QueueSpec::Ndp { data_cap_pkts: 8 }
        );
        assert_eq!(
            QueueSpec::droptail_default().with_data_cap(8),
            QueueSpec::DropTail {
                cap_pkts: 8,
                ecn_thresh_pkts: None
            }
        );
        // Dependent thresholds are clamped inside the new capacity.
        assert_eq!(
            QueueSpec::dctcp_default().with_data_cap(8),
            QueueSpec::DropTail {
                cap_pkts: 8,
                ecn_thresh_pkts: Some(8)
            }
        );
        match QueueSpec::dcqcn_default().with_data_cap(8) {
            QueueSpec::Lossless {
                cap_pkts,
                xoff_pkts,
                xon_pkts,
                ecn_thresh_pkts,
            } => {
                assert_eq!(cap_pkts, 8);
                assert!(xoff_pkts <= 8 && xon_pkts <= 8);
                assert_eq!(ecn_thresh_pkts, Some(8));
            }
            other => panic!("lossless stayed lossless, got {other:?}"),
        }
    }

    #[test]
    fn defaults_match_paper_parameters() {
        match QueueSpec::ndp_default() {
            QueueSpec::Ndp { data_cap_pkts } => assert_eq!(data_cap_pkts, 8),
            _ => panic!(),
        }
        match QueueSpec::dctcp_default() {
            QueueSpec::DropTail {
                cap_pkts,
                ecn_thresh_pkts,
            } => {
                assert_eq!(cap_pkts, 200);
                assert_eq!(ecn_thresh_pkts, Some(30));
            }
            _ => panic!(),
        }
        match QueueSpec::dcqcn_default() {
            QueueSpec::Lossless {
                ecn_thresh_pkts, ..
            } => assert_eq!(ecn_thresh_pkts, Some(20)),
            _ => panic!(),
        }
    }
}
