//! The pluggable topology surface.
//!
//! The paper's evaluation is a matrix of transports × scenarios, and a
//! scenario is above all a fabric shape. Every builder in this crate —
//! the three-tier [`crate::FatTree`], the testbed [`crate::TwoTier`], the
//! rack-scale [`crate::LeafSpine`] and the calibration
//! [`crate::BackToBack`] pair — implements one object-safe [`Topology`]
//! trait: how many hosts it wires, how source-routed path tags map to
//! path counts, what an unloaded flow's ideal completion time is, and how
//! to enumerate/degrade its links at runtime. Experiment harnesses hold
//! `&dyn Topology` and never know which fabric they are driving, so
//! adding a fabric shape is a single builder file plus one registry line
//! in `ndp-experiments` — exactly like adding a protocol.
//!
//! # Ideal FCT and per-hop speeds
//!
//! [`Topology::ideal_fct`] is the unloaded-network lower bound that
//! FCT-slowdown reporting normalizes against. It is computed from the
//! topology's own link speeds — the per-hop [`Topology::path_profile`]
//! for the first packet's store-and-forward latency, and the min-cut
//! [`Topology::bulk_speed`] for the pipelined bulk — so a fabric with
//! slow uplinks (an oversubscribed leaf-spine) or asymmetric tiers
//! yields an honest bound that no transport can beat and a multipath
//! transport can approach.

use ndp_net::packet::{HostId, Packet, HEADER_BYTES};
use ndp_net::queue::{LinkClass, Queue, QueueStats};
use ndp_net::switch::Switch;
use ndp_sim::{ComponentId, Speed, Time, World};

/// One hop of a path: the link's speed and one-way propagation delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    pub speed: Speed,
    pub delay: Time,
}

/// One directional link of a built topology: the egress [`Queue`]
/// component that models it, its tier class, and a human-readable label
/// (`"agg_up[0][1]"`) stable across builds of the same shape.
#[derive(Clone, Debug)]
pub struct LinkRef {
    pub queue: ComponentId,
    pub class: LinkClass,
    pub label: String,
}

/// Flip the live-mask bit for `queue`'s port on its owning switch, if a
/// switch owns it (host-NIC queues have no owner — nothing can reroute
/// around a dead NIC). Walks the arena, so it is O(world); fine for rare
/// failure events, while the scheduled-campaign path
/// ([`crate::ChaosController`]) resolves owners once at install time.
pub fn mask_link(world: &mut World<Packet>, queue: ComponentId, up: bool) {
    let switches: Vec<ComponentId> = world
        .ids()
        .filter(|&id| world.try_get::<Switch>(id).is_some())
        .collect();
    for id in switches {
        let port = world
            .try_get::<Switch>(id)
            .and_then(|sw| sw.ports().iter().position(|&q| q == queue));
        if let Some(p) = port {
            world.get_mut::<Switch>(id).set_port_up(p, up);
            return;
        }
    }
}

/// Ideal (unloaded-network, store-and-forward) completion time of a
/// `bytes` flow: every wire byte serializes once through `bulk` — the
/// sustainable src→dst bandwidth — and the flow's *final* packet then
/// store-and-forwards across the remaining hops at their own speeds,
/// plus propagation. A true lower bound, so slowdowns normalized by it
/// are ≥ 1 (the registry proptests drive real unloaded flows against it
/// on every registered topology).
///
/// Two details make the bound honest where naive formulas fail:
///
/// * `bulk` is a *min-cut*, not a single-path bottleneck: a multipath
///   transport sprays bulk data over every parallel uplink, so e.g. four
///   5 Gb/s spines carry 10 Gb/s of one host's traffic.
/// * the tail charge uses the flow's **last** packet (the remainder,
///   which every transport here sends after its full-MTU packets), not
///   the first full packet — a 2.5 KB remainder crosses five 10 Gb/s
///   hops 3× faster than a 9 KB jumbogram, and real runs exploit that.
///
/// The tail drops the single most expensive hop: the bulk serialization
/// already accounts for the last packet crossing the narrowest link once.
pub fn ideal_fct_over(hops: &[Hop], bulk: Speed, mtu: u32, bytes: u64) -> Time {
    assert!(!hops.is_empty(), "path must cross at least one link");
    let per = (mtu - HEADER_BYTES) as u64;
    let bytes = bytes.max(1);
    let pkts = bytes.div_ceil(per);
    let wire = bytes + pkts * HEADER_BYTES as u64;
    // Wire size of the final packet: the payload remainder (a full
    // packet when the size divides evenly) plus its header.
    let last = ((bytes - 1) % per) + 1 + HEADER_BYTES as u64;
    let prop: Time = hops.iter().map(|h| h.delay).sum();
    let mut tail: Vec<Time> = hops.iter().map(|h| h.speed.tx_time(last)).collect();
    tail.sort_unstable();
    let tail: Time = tail[..tail.len() - 1].iter().copied().sum();
    bulk.tx_time(wire) + tail + prop
}

/// A fabric under evaluation: host/path arithmetic, ideal-FCT lower
/// bounds, link enumeration and runtime failure injection. Object-safe —
/// harnesses drive `&dyn Topology` (or `Arc<dyn Topology>` when a
/// component owns it across the run).
///
/// Implementations are the builder handles themselves (`FatTree`,
/// `TwoTier`, `LeafSpine`, `BackToBack`): they already carry every
/// component id the trait needs, so implementing it is pure arithmetic.
pub trait Topology: Send + Sync {
    /// Short fabric-shape name used in tables and reports.
    fn label(&self) -> &'static str;

    /// Number of hosts wired into the world.
    fn n_hosts(&self) -> usize;

    /// The host component for endpoint registration.
    fn host(&self, h: HostId) -> ComponentId;

    /// The host's NIC egress queue (raw packet injection, NIC stats).
    fn host_nic(&self, h: HostId) -> ComponentId;

    fn mtu(&self) -> u32;

    /// Speed of the host access links — the reference rate offered-load
    /// fractions and per-flow goodput are measured against.
    fn host_link_speed(&self) -> Speed;

    /// Number of distinct sender-selectable paths between two hosts;
    /// packets tagged `0..n_paths(src, dst)` must all reach `dst`.
    fn n_paths(&self, src: HostId, dst: HostId) -> u32;

    /// Per-hop speeds/delays of the fastest src→dst path (used for
    /// [`Topology::ideal_fct`]; length is the hop count).
    fn path_profile(&self, src: HostId, dst: HostId) -> Vec<Hop>;

    /// Number of links a packet crosses from `src` to `dst`.
    fn n_hops(&self, src: HostId, dst: HostId) -> u32 {
        self.path_profile(src, dst).len() as u32
    }

    /// Sustainable src→dst bulk bandwidth for a transport that can use
    /// every parallel path: the minimum cut over the access links and
    /// the (multiplied) fabric tiers. Defaults to the single-path
    /// bottleneck, which is exact when tiers are never slower in
    /// aggregate than an access link; topologies whose oversubscription
    /// comes from *slow uplinks in parallel* (see `LeafSpine`) override
    /// it with the real cut.
    fn bulk_speed(&self, src: HostId, dst: HostId) -> Speed {
        self.path_profile(src, dst)
            .iter()
            .map(|h| h.speed)
            .min()
            .expect("path must cross at least one link")
    }

    /// Unloaded-network lower bound on the completion time of a `bytes`
    /// flow — see [`ideal_fct_over`] for the exact model.
    fn ideal_fct(&self, src: HostId, dst: HostId, bytes: u64) -> Time {
        ideal_fct_over(
            &self.path_profile(src, dst),
            self.bulk_speed(src, dst),
            self.mtu(),
            bytes,
        )
    }

    /// Every directional link of the fabric (host NICs included), with
    /// tier classes and stable labels.
    fn links(&self) -> Vec<LinkRef>;

    /// Renegotiate one directional link to `speed` at runtime (Figure 22
    /// style asymmetric failure). `queue` is a [`LinkRef::queue`] id.
    fn set_link_speed(&self, world: &mut World<Packet>, queue: ComponentId, speed: Speed) {
        world.get_mut::<Queue>(queue).set_rate(speed);
    }

    /// Hard-fail one directional link: buffered packets are lost, arrivals
    /// drop (or bounce back to their sender on an RTS-capable NDP queue),
    /// and the owning switch's live-mask is updated so its router steers
    /// traffic onto equivalent live ports where any exist. The link's
    /// original rate is remembered; [`Topology::restore_link`] brings it
    /// back. (Before the fabric-chaos subsystem this merely renegotiated
    /// the rate down to a 10 Mb/s crawl and forgot the original speed.)
    fn fail_link(&self, world: &mut World<Packet>, queue: ComponentId) {
        world.get_mut::<Queue>(queue).set_down(true);
        mask_link(world, queue, false);
    }

    /// Recover a failed (or degraded) link: back up at its construction-time
    /// nominal rate, and the owning switch's live-mask bit is cleared.
    fn restore_link(&self, world: &mut World<Packet>, queue: ComponentId) {
        world.get_mut::<Queue>(queue).restore();
        mask_link(world, queue, true);
    }

    /// Aggregate queue statistics by link class over this topology's own
    /// links (trim-location analysis).
    fn stats_by_class(&self, world: &World<Packet>) -> Vec<(LinkClass, QueueStats)> {
        let mut acc: Vec<(LinkClass, QueueStats)> = Vec::new();
        for link in self.links() {
            let st = &world.get::<Queue>(link.queue).stats;
            accumulate_stats(&mut acc, link.class, st);
        }
        acc
    }
}

/// Fold one queue's stats into a per-class accumulator (shared by the
/// trait's [`Topology::stats_by_class`] and `FatTree`'s world-walking
/// variant).
pub(crate) fn accumulate_stats(
    acc: &mut Vec<(LinkClass, QueueStats)>,
    class: LinkClass,
    st: &QueueStats,
) {
    let slot = match acc.iter_mut().find(|(c, _)| *c == class) {
        Some((_, s)) => s,
        None => {
            acc.push((class, QueueStats::default()));
            &mut acc.last_mut().expect("just pushed").1
        }
    };
    slot.forwarded_pkts += st.forwarded_pkts;
    slot.forwarded_bytes += st.forwarded_bytes;
    slot.payload_bytes += st.payload_bytes;
    slot.trimmed += st.trimmed;
    slot.bounced += st.bounced;
    slot.dropped_data += st.dropped_data;
    slot.dropped_ctrl += st.dropped_ctrl;
    slot.ecn_marked += st.ecn_marked;
    slot.xoff_sent += st.xoff_sent;
    slot.dropped_down += st.dropped_down;
    slot.max_occupancy_bytes = slot.max_occupancy_bytes.max(st.max_occupancy_bytes);
}

/// Push a `LinkRef` per queue id of a 2-D id table (`name[i][j]`).
pub(crate) fn push_links_2d(
    out: &mut Vec<LinkRef>,
    name: &str,
    class: LinkClass,
    table: &[Vec<ComponentId>],
) {
    for (i, row) in table.iter().enumerate() {
        for (j, &queue) in row.iter().enumerate() {
            out.push(LinkRef {
                queue,
                class,
                label: format!("{name}[{i}][{j}]"),
            });
        }
    }
}

/// Push a `LinkRef` per queue id of a 1-D id list (`name[i]`).
pub(crate) fn push_links_1d(
    out: &mut Vec<LinkRef>,
    name: &str,
    class: LinkClass,
    ids: &[ComponentId],
) {
    for (i, &queue) in ids.iter().enumerate() {
        out.push(LinkRef {
            queue,
            class,
            label: format!("{name}[{i}]"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FatTree, FatTreeCfg};

    fn uniform(hops: usize) -> Vec<Hop> {
        vec![
            Hop {
                speed: Speed::gbps(10),
                delay: Time::from_us(1),
            };
            hops
        ]
    }

    #[test]
    fn uniform_ideal_matches_historical_formula() {
        // Cross-pod single full packet on k=4 defaults: 6 links of 7.2 us
        // serialization + 1 us propagation each (the topology one-way
        // latency test measures the same number on the wire).
        let bytes = (9000 - HEADER_BYTES) as u64;
        let line = Speed::gbps(10);
        assert_eq!(
            ideal_fct_over(&uniform(6), line, 9000, bytes),
            Time::from_ns(6 * 7_200) + Time::from_us(6)
        );
        // Two packets: one extra line-rate serialization behind the first.
        assert_eq!(
            ideal_fct_over(&uniform(6), line, 9000, 2 * bytes),
            Time::from_ns(7 * 7_200) + Time::from_us(6)
        );
        // Same-ToR flows only cross 2 links.
        assert_eq!(
            ideal_fct_over(&uniform(2), line, 9000, bytes),
            Time::from_ns(2 * 7_200) + Time::from_us(2)
        );
    }

    #[test]
    fn trait_ideal_fct_delegates_to_path_profile() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let bytes = (9000 - HEADER_BYTES) as u64;
        let t: &dyn Topology = &ft;
        assert_eq!(
            t.ideal_fct(0, 15, bytes),
            Time::from_ns(6 * 7_200) + Time::from_us(6)
        );
        assert_eq!(t.n_hops(0, 15), 6);
        assert_eq!(t.n_hops(0, 1), 2);
    }

    #[test]
    fn slow_bottleneck_hop_raises_the_bound() {
        // A 4-hop single-spine leaf-spine path with a 1 Gb/s uplink: the
        // bound must charge the two uplink crossings at 1 Gb/s and
        // pipeline the bulk at the 1 Gb/s cut, strictly above the
        // all-10G bound.
        let host = Hop {
            speed: Speed::gbps(10),
            delay: Time::from_us(1),
        };
        let uplink = Hop {
            speed: Speed::gbps(1),
            delay: Time::from_us(1),
        };
        let path = [host, uplink, uplink, host];
        let bytes = 90_000u64;
        let slow = ideal_fct_over(&path, Speed::gbps(1), 9000, bytes);
        let fast = ideal_fct_over(&uniform(4), Speed::gbps(10), 9000, bytes);
        assert!(slow > fast, "{slow:?} vs {fast:?}");
        // All wire bytes through the 1 Gb/s cut; the 704 B final packet
        // then store-and-forwards over one more 1G hop (the other is the
        // cut) and the two 10G access hops; prop: 4us.
        let pkts = bytes.div_ceil((9000 - HEADER_BYTES) as u64);
        let wire = bytes + pkts * HEADER_BYTES as u64;
        let last = bytes - (pkts - 1) * (9000 - HEADER_BYTES) as u64 + HEADER_BYTES as u64;
        assert_eq!(last, 704);
        let expect = Speed::gbps(1).tx_time(wire)
            + Speed::gbps(1).tx_time(last)
            + Speed::gbps(10).tx_time(last) * 2
            + Time::from_us(4);
        assert_eq!(slow, expect);
    }

    #[test]
    fn partial_last_packet_tightens_the_tail() {
        // 2 full packets + a small remainder: the tail charge uses the
        // remainder, so the bound sits strictly below the naive
        // first-packet-store-and-forward figure — which real unloaded
        // runs beat (that naive figure was the seed's formula, and the
        // registry proptests caught a real NDP run outrunning it).
        let per = (9000 - HEADER_BYTES) as u64;
        let bytes = 2 * per + 1000;
        let naive = Speed::gbps(10).tx_time(6 * 9000 + (bytes + 3 * 64 - 9000)) + Time::from_us(6);
        let bound = ideal_fct_over(&uniform(6), Speed::gbps(10), 9000, bytes);
        assert!(bound < naive, "{bound:?} vs naive {naive:?}");
        // Exact: wire once at 10G + five crossings of the 1064 B tail.
        let wire = bytes + 3 * HEADER_BYTES as u64;
        let expect =
            Speed::gbps(10).tx_time(wire) + Speed::gbps(10).tx_time(1064) * 5 + Time::from_us(6);
        assert_eq!(bound, expect);
    }

    #[test]
    fn fail_and_restore_round_trip_masks_port_and_recovers_nominal_rate() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let t: &dyn Topology = &ft;
        let link = t
            .links()
            .into_iter()
            .find(|l| l.label == "agg_up[0][0]")
            .expect("fat-tree exposes agg uplinks");
        let owner_port = |w: &World<Packet>| {
            w.ids()
                .filter_map(|id| {
                    w.try_get::<Switch>(id)?
                        .ports()
                        .iter()
                        .position(|&q| q == link.queue)
                        .map(|p| (id, p))
                })
                .next()
                .expect("an agg switch owns this uplink")
        };
        let nominal = w.get::<Queue>(link.queue).rate();
        // Degrade first, then hard-fail: restore must forget both.
        t.set_link_speed(&mut w, link.queue, Speed::gbps(1));
        t.fail_link(&mut w, link.queue);
        assert!(w.get::<Queue>(link.queue).is_down());
        let (sw, p) = owner_port(&w);
        assert!(!w.get::<Switch>(sw).port_is_up(p), "dead port masked");
        t.restore_link(&mut w, link.queue);
        let q = w.get::<Queue>(link.queue);
        assert!(!q.is_down());
        assert_eq!(q.rate(), nominal, "recovery renegotiates the original rate");
        assert!(w.get::<Switch>(sw).port_is_up(p), "mask cleared");
    }
}
