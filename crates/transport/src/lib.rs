//! The pluggable transport surface.
//!
//! The paper's evaluation is a matrix of transports × scenarios. Every
//! transport under test — NDP itself and each baseline — implements one
//! object-safe [`Transport`] trait: which fabric it runs over, how to
//! attach a flow described by a [`FlowSpec`], and how to harvest
//! receiver-side results. Experiment harnesses hold `&dyn Transport` and
//! never know which protocol they are driving, so adding a protocol is a
//! single impl next to its sender/receiver plus one registry line in
//! `ndp-experiments` — no cross-cutting `match` edits.
//!
//! The trait lives in its own leaf crate (above `ndp-net`/`ndp-sim`/
//! `ndp-topology`, below every protocol crate) so `ndp-core` and
//! `ndp-baselines` can both implement it without a dependency cycle.

use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_sim::{ComponentId, Time, World};

pub use ndp_topology::QueueSpec;

/// One flow to set up, in protocol-neutral terms.
///
/// Fields a given transport has no use for (e.g. `iw` for TCP, `prio` for
/// DCQCN) are ignored by its [`Transport::attach`].
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub size: u64,
    pub start: Time,
    /// Receiver-side pull prioritization (NDP §3.2.2).
    pub prio: bool,
    /// Wake `(component, token)` when the flow completes.
    pub notify: Option<(ComponentId, u64)>,
    /// Override the transport's initial window in packets (None = its
    /// default; NDP's paper default is 30).
    pub iw: Option<u64>,
    /// Arm the transport's stall-recovery net, if it has one. Request
    /// serving cares about *every* leg completing, so drivers that book
    /// end-to-end request latency set this; open-loop FCT sweeps leave it
    /// off so the paper experiments' event streams are unchanged. For NDP
    /// this covers the lost-PULL hole (see `NdpFlowCfg::pull_liveness`);
    /// transports whose reliability already covers all state (TCP-family
    /// RTO) ignore it.
    pub liveness: bool,
}

impl FlowSpec {
    pub fn new(flow: FlowId, src: HostId, dst: HostId, size: u64) -> FlowSpec {
        FlowSpec {
            flow,
            src,
            dst,
            size,
            start: Time::ZERO,
            prio: false,
            notify: None,
            iw: None,
            liveness: false,
        }
    }
}

/// Deterministic per-flow "ECMP hash" for single-path transports.
pub fn flow_hash_path(flow: FlowId) -> u32 {
    (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

/// Final per-flow accounting, returned by [`Transport::detach`] as the
/// endpoints are freed. The first two fields are receiver-side goodput;
/// the rest are the span tallies the telemetry layer attributes tail
/// flows with. A transport without a given notion leaves the field at
/// its default (`None`/0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowHarvest {
    pub delivered_bytes: u64,
    /// Absolute completion instant, `None` if the flow never finished
    /// (or the transport has no completion notion, e.g. blast).
    pub completion_time: Option<Time>,
    /// Absolute instant the receiver first saw the flow (data or header).
    pub first_data: Option<Time>,
    /// Sender retransmissions, however the protocol triggers them
    /// (NACK/RTS/RTO for NDP, dupACK fast retransmit for TCP-family,
    /// re-issued credits for pHost).
    pub retransmissions: u64,
    /// The subset of recovery events driven by a timer expiry — the
    /// slowest, tail-defining recovery path.
    pub timeouts: u64,
    /// Trimmed headers the receiver saw (NDP fabrics; 0 elsewhere).
    pub trimmed_headers: u64,
    /// Return-to-sender headers the sender saw (NDP §3.2.4; 0 elsewhere).
    pub rts_events: u64,
}

/// Read-only access to the sender endpoint being detached, handed to the
/// harvest closure so transports can fold sender-side tallies
/// (retransmissions, RTS arrivals) into the [`FlowHarvest`]. Wraps an
/// `Option` because detach is idempotent and either side may already be
/// gone.
pub struct SenderSide<'a>(Option<&'a dyn ndp_net::Endpoint>);

impl SenderSide<'_> {
    /// Downcast to the transport's concrete sender type; `None` when the
    /// sender endpoint no longer exists *or* is some other type (a
    /// mis-wired transport shows up as missing tallies, not a panic —
    /// detach must stay usable on half-torn-down flows).
    pub fn get<S: 'static>(&self) -> Option<&S> {
        self.0.and_then(|ep| ep.as_any().downcast_ref::<S>())
    }
}

/// The shared body of every [`Transport::detach`]: remove the sender's
/// endpoint, remove the receiver's, and harvest both — the receiver as
/// `R`, the sender through the [`SenderSide`] accessor.
///
/// A missing flow (already detached) yields the default (empty) harvest —
/// detach is idempotent. A receiver that exists but is not an `R` panics
/// loudly, matching `Host::endpoint`'s behaviour: that is a mis-wired
/// transport, not a recoverable condition.
pub fn detach_endpoints<R: 'static>(
    world: &mut World<Packet>,
    src_host: ComponentId,
    dst_host: ComponentId,
    flow: FlowId,
    harvest: impl FnOnce(SenderSide<'_>, &R) -> FlowHarvest,
) -> FlowHarvest {
    use ndp_net::Host;
    let sender = world.get_mut::<Host>(src_host).remove_endpoint(flow);
    match world.get_mut::<Host>(dst_host).remove_endpoint(flow) {
        None => FlowHarvest::default(),
        Some(ep) => {
            let r = ep
                .as_any()
                .downcast_ref::<R>()
                .unwrap_or_else(|| panic!("receiver for flow {flow} has unexpected type"));
            harvest(SenderSide(sender.as_deref()), r)
        }
    }
}

/// A transport under evaluation: attach flows, pick the fabric it runs
/// over, harvest results. Object-safe — harnesses drive `&dyn Transport`.
///
/// Implementations live next to their sender/receiver (`ndp_core` for NDP,
/// one file per baseline in `ndp_baselines`) and are exposed as `static`
/// instances so a registry can hold `&'static dyn Transport`. Protocol
/// variants (DCTCP vs TCP, the Figure 22 no-path-penalty ablation) are
/// *configured instances* of the same impl, not separate types.
pub trait Transport: Sync {
    /// Human-readable name used in tables and headlines.
    fn label(&self) -> &'static str;

    /// The switch service model this transport runs over (§6.1: NDP gets
    /// 8-packet trimming queues, DCTCP/MPTCP 200-packet drop-tail,
    /// DCQCN lossless+ECN).
    fn fabric(&self) -> QueueSpec;

    /// Register sender/receiver endpoints for `spec` between explicit
    /// host components and schedule the flow start.
    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        n_paths: u32,
        mtu: u32,
    );

    /// Receiver-side delivered payload bytes.
    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64;

    /// Receiver-side completion time (absolute), if the flow finished.
    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time>;

    /// Harvest the flow's final results and free both endpoints' state
    /// (sender on `src_host`, receiver on `dst_host`).
    ///
    /// This is the retirement half of the lifecycle: [`Transport::attach`]
    /// can be called mid-run (typically from a deferred world op at the
    /// flow's arrival instant) and `detach` frees everything the attach
    /// registered — so a long open-loop run's live state is bounded by the
    /// flows in flight, not the flows ever offered. Idempotent: detaching
    /// an unknown flow returns a default (empty) harvest.
    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> FlowHarvest;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_hash_is_deterministic_and_spread() {
        let a = flow_hash_path(1);
        assert_eq!(a, flow_hash_path(1));
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|f| flow_hash_path(f) % 16).collect();
        assert!(distinct.len() > 8, "hash should spread across paths");
    }

    #[test]
    fn flow_spec_defaults() {
        let s = FlowSpec::new(1, 2, 3, 100);
        assert_eq!(s.start, Time::ZERO);
        assert!(!s.prio && s.notify.is_none() && s.iw.is_none() && !s.liveness);
    }
}
