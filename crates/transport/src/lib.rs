//! The pluggable transport surface.
//!
//! The paper's evaluation is a matrix of transports × scenarios. Every
//! transport under test — NDP itself and each baseline — implements one
//! object-safe [`Transport`] trait: which fabric it runs over, how to
//! attach a flow described by a [`FlowSpec`], and how to harvest
//! receiver-side results. Experiment harnesses hold `&dyn Transport` and
//! never know which protocol they are driving, so adding a protocol is a
//! single impl next to its sender/receiver plus one registry line in
//! `ndp-experiments` — no cross-cutting `match` edits.
//!
//! The trait lives in its own leaf crate (above `ndp-net`/`ndp-sim`/
//! `ndp-topology`, below every protocol crate) so `ndp-core` and
//! `ndp-baselines` can both implement it without a dependency cycle.

use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_sim::{ComponentId, Time, World};

pub use ndp_topology::QueueSpec;

/// One flow to set up, in protocol-neutral terms.
///
/// Fields a given transport has no use for (e.g. `iw` for TCP, `prio` for
/// DCQCN) are ignored by its [`Transport::attach`].
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub size: u64,
    pub start: Time,
    /// Receiver-side pull prioritization (NDP §3.2.2).
    pub prio: bool,
    /// Wake `(component, token)` when the flow completes.
    pub notify: Option<(ComponentId, u64)>,
    /// Override the transport's initial window in packets (None = its
    /// default; NDP's paper default is 30).
    pub iw: Option<u64>,
}

impl FlowSpec {
    pub fn new(flow: FlowId, src: HostId, dst: HostId, size: u64) -> FlowSpec {
        FlowSpec {
            flow,
            src,
            dst,
            size,
            start: Time::ZERO,
            prio: false,
            notify: None,
            iw: None,
        }
    }
}

/// Deterministic per-flow "ECMP hash" for single-path transports.
pub fn flow_hash_path(flow: FlowId) -> u32 {
    (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

/// A transport under evaluation: attach flows, pick the fabric it runs
/// over, harvest results. Object-safe — harnesses drive `&dyn Transport`.
///
/// Implementations live next to their sender/receiver (`ndp_core` for NDP,
/// one file per baseline in `ndp_baselines`) and are exposed as `static`
/// instances so a registry can hold `&'static dyn Transport`. Protocol
/// variants (DCTCP vs TCP, the Figure 22 no-path-penalty ablation) are
/// *configured instances* of the same impl, not separate types.
pub trait Transport: Sync {
    /// Human-readable name used in tables and headlines.
    fn label(&self) -> &'static str;

    /// The switch service model this transport runs over (§6.1: NDP gets
    /// 8-packet trimming queues, DCTCP/MPTCP 200-packet drop-tail,
    /// DCQCN lossless+ECN).
    fn fabric(&self) -> QueueSpec;

    /// Register sender/receiver endpoints for `spec` between explicit
    /// host components and schedule the flow start.
    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        n_paths: u32,
        mtu: u32,
    );

    /// Receiver-side delivered payload bytes.
    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64;

    /// Receiver-side completion time (absolute), if the flow finished.
    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_hash_is_deterministic_and_spread() {
        let a = flow_hash_path(1);
        assert_eq!(a, flow_hash_path(1));
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|f| flow_hash_path(f) % 16).collect();
        assert!(distinct.len() > 8, "hash should spread across paths");
    }

    #[test]
    fn flow_spec_defaults() {
        let s = FlowSpec::new(1, 2, 3, 100);
        assert_eq!(s.start, Time::ZERO);
        assert!(!s.prio && s.notify.is_none() && s.iw.is_none());
    }
}
