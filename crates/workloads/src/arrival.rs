//! Flow arrival processes for dynamic traffic.
//!
//! The open-loop evaluation ("FCT slowdown vs. offered load") drives each
//! host with an independent arrival process whose rate is derived from a
//! target load fraction of the host NIC: `rate = load × link_bps / (8 ×
//! mean_flow_size)`. All sampling is inverse-transform over the world's
//! seeded RNG stream, so equal seeds give bit-identical arrival times —
//! the contract the parallel sweep layer relies on.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

/// Picoseconds per second, the unit arrival gaps are expressed in.
const PS_PER_S: f64 = 1e12;

/// One piece of a piecewise-constant rate schedule: hold `rate_hz` for
/// `dur_ps`, then move to the next segment (the schedule cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateSegment {
    /// Segment length in picoseconds (must be positive).
    pub dur_ps: u64,
    /// Poisson arrival rate inside the segment, in arrivals/sec.
    /// Zero means a quiet period — no arrivals until the segment ends.
    pub rate_hz: f64,
}

/// How a host decides when its next flow starts.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival gaps with
    /// mean `1/rate_hz` — the standard load-sweep model.
    Poisson { rate_hz: f64 },
    /// Deterministic fixed-rate arrivals: constant gap `1/rate_hz`
    /// (isolates queueing from arrival burstiness).
    FixedRate { rate_hz: f64 },
    /// Closed-loop think time: exponential gap with the given *median*
    /// (the paper's Figure 23 uses a 1 ms median inter-flow gap). As a
    /// gap generator this is an exponential with mean `median / ln 2`.
    ClosedLoop { median_gap_ps: u64 },
    /// Non-homogeneous Poisson with a piecewise-constant rate that cycles
    /// through `segments` — the diurnal / bursty load swing model for
    /// sustained multi-second campaigns. Sampling is exact: a draw that
    /// overshoots its segment boundary is discarded and the process
    /// restarts at the boundary (valid by memorylessness), so equal seeds
    /// still give bit-identical arrival streams.
    TimeVarying { segments: Arc<[RateSegment]> },
}

impl ArrivalProcess {
    /// The Poisson process that offers `load` (fraction of `link_bps`)
    /// given flows of `mean_flow_bytes` on average.
    pub fn poisson_for_load(load: f64, link_bps: u64, mean_flow_bytes: f64) -> ArrivalProcess {
        assert!(load > 0.0 && load < 1.5, "load {load} out of range");
        assert!(mean_flow_bytes > 0.0);
        ArrivalProcess::Poisson {
            rate_hz: load * link_bps as f64 / (8.0 * mean_flow_bytes),
        }
    }

    /// A cycling piecewise-rate process from `(duration_ps, rate_hz)`
    /// pieces. Panics on empty schedules, zero-length segments, or an
    /// all-quiet cycle (which could never produce an arrival).
    pub fn time_varying(pieces: Vec<(u64, f64)>) -> ArrivalProcess {
        assert!(!pieces.is_empty(), "time-varying schedule needs segments");
        let segments: Vec<RateSegment> = pieces
            .into_iter()
            .map(|(dur_ps, rate_hz)| {
                assert!(dur_ps > 0, "zero-length rate segment");
                assert!(rate_hz >= 0.0, "negative arrival rate");
                RateSegment { dur_ps, rate_hz }
            })
            .collect();
        assert!(
            segments.iter().any(|s| s.rate_hz > 0.0),
            "time-varying schedule must have at least one active segment"
        );
        ArrivalProcess::TimeVarying {
            segments: segments.into(),
        }
    }

    /// A diurnal-burst schedule: hold `base_hz`, then burst to `peak_hz`
    /// for the final `burst_frac` of every `period_ps` cycle.
    pub fn diurnal_burst(
        base_hz: f64,
        peak_hz: f64,
        period_ps: u64,
        burst_frac: f64,
    ) -> ArrivalProcess {
        assert!(
            (0.0..1.0).contains(&burst_frac) && burst_frac > 0.0,
            "burst fraction {burst_frac} out of (0, 1)"
        );
        let burst_ps = ((period_ps as f64 * burst_frac) as u64).max(1);
        let base_ps = period_ps.saturating_sub(burst_ps).max(1);
        ArrivalProcess::time_varying(vec![(base_ps, base_hz), (burst_ps, peak_hz)])
    }

    /// Total length of one rate cycle (only meaningful for
    /// [`ArrivalProcess::TimeVarying`]).
    fn period_ps(segments: &[RateSegment]) -> u64 {
        segments.iter().map(|s| s.dur_ps).sum()
    }

    /// Mean inter-arrival gap in picoseconds. For time-varying schedules
    /// this is the cycle-averaged rate's reciprocal.
    pub fn mean_gap_ps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_hz } | ArrivalProcess::FixedRate { rate_hz } => {
                PS_PER_S / rate_hz
            }
            ArrivalProcess::ClosedLoop { median_gap_ps } => {
                *median_gap_ps as f64 / std::f64::consts::LN_2
            }
            ArrivalProcess::TimeVarying { segments } => {
                let period = Self::period_ps(segments) as f64;
                let arrivals: f64 = segments
                    .iter()
                    .map(|s| s.rate_hz * s.dur_ps as f64 / PS_PER_S)
                    .sum();
                period / arrivals
            }
        }
    }

    /// Draw the next inter-arrival gap for a stationary process. For
    /// [`ArrivalProcess::TimeVarying`] the gap depends on the current
    /// time — use [`ArrivalProcess::next_gap_at_ps`]; this draws as seen
    /// from the start of the cycle.
    pub fn next_gap_ps(&self, rng: &mut SmallRng) -> u64 {
        match self {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::ClosedLoop { .. } => {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (-u.ln() * self.mean_gap_ps()) as u64
            }
            ArrivalProcess::FixedRate { .. } => self.mean_gap_ps() as u64,
            ArrivalProcess::TimeVarying { .. } => self.next_gap_at_ps(0, rng),
        }
    }

    /// Draw the gap to the next arrival given the current simulated time.
    /// Stationary processes ignore `now_ps` (one RNG draw, bit-identical
    /// to [`ArrivalProcess::next_gap_ps`]); time-varying schedules sample
    /// the segment containing `now_ps` and restart at each boundary they
    /// overshoot — exact for piecewise-constant rates by memorylessness.
    pub fn next_gap_at_ps(&self, now_ps: u64, rng: &mut SmallRng) -> u64 {
        let ArrivalProcess::TimeVarying { segments } = self else {
            return self.next_gap_ps(rng);
        };
        let period = Self::period_ps(segments);
        let mut t = now_ps;
        loop {
            // Locate the segment containing t and its absolute end time.
            let phase = t % period;
            let mut acc = 0u64;
            let (mut rate, mut seg_end) = (0.0, t);
            for s in segments.iter() {
                acc += s.dur_ps;
                if phase < acc {
                    rate = s.rate_hz;
                    seg_end = t + (acc - phase);
                    break;
                }
            }
            if rate > 0.0 {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let gap = (-u.ln() * PS_PER_S / rate) as u64;
                if t.saturating_add(gap) < seg_end {
                    return t + gap - now_ps;
                }
            }
            // Quiet segment, or the draw overshot: restart at the boundary.
            t = seg_end;
        }
    }
}

/// Closed-loop arrival gaps: exponential with a given median (the paper
/// uses a 1 ms median inter-flow gap for Figure 23).
pub fn closed_loop_gap_ps(median_ps: u64, rng: &mut SmallRng) -> u64 {
    ArrivalProcess::ClosedLoop {
        median_gap_ps: median_ps,
    }
    .next_gap_ps(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let rate = 50_000.0; // 50k flows/s => mean gap 20 us
        let p = ArrivalProcess::Poisson { rate_hz: rate };
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| p.next_gap_ps(&mut rng) as f64).sum();
        let mean = sum / n as f64;
        let expect = PS_PER_S / rate;
        assert!(
            (mean / expect - 1.0).abs() < 0.02,
            "mean gap {mean:.0} ps vs 1/rate {expect:.0} ps"
        );
    }

    #[test]
    fn fixed_rate_gaps_are_constant() {
        let p = ArrivalProcess::FixedRate { rate_hz: 1_000.0 };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(p.next_gap_ps(&mut rng), 1_000_000_000); // 1 ms
        }
    }

    #[test]
    fn closed_loop_gap_median_matches() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut gaps: Vec<u64> = (0..20_000)
            .map(|_| closed_loop_gap_ps(1_000_000_000, &mut rng))
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!((median / 1e9 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn load_resolves_to_rate() {
        // 30 % of 10 Gb/s with 1.5 MB flows: 0.3 * 1.25e9 / 1.5e6 = 250/s.
        let p = ArrivalProcess::poisson_for_load(0.3, 10_000_000_000, 1_500_000.0);
        match p {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!((rate_hz - 250.0).abs() < 1e-9, "rate {rate_hz}");
            }
            other => panic!("expected Poisson, got {other:?}"),
        }
        assert!((p.mean_gap_ps() - 4e9).abs() < 1.0); // 4 ms mean gap
    }

    /// Count arrivals of `p` in `[0, horizon_ps)` starting from t=0.
    fn arrivals_in(p: &ArrivalProcess, horizon_ps: u64, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = p.next_gap_at_ps(0, &mut rng);
        let mut out = Vec::new();
        while t < horizon_ps {
            out.push(t);
            t += p.next_gap_at_ps(t, &mut rng);
        }
        out
    }

    #[test]
    fn time_varying_rates_track_segments() {
        // 1 ms at 1M/s then 1 ms at 10M/s, cycling: the burst half must
        // carry ~10x the arrivals of the base half, cycle after cycle.
        let p = ArrivalProcess::time_varying(vec![(1_000_000_000, 1e6), (1_000_000_000, 1e7)]);
        let ts = arrivals_in(&p, 8_000_000_000, 11);
        let mut base = 0usize;
        let mut burst = 0usize;
        for &t in &ts {
            if t % 2_000_000_000 < 1_000_000_000 {
                base += 1;
            } else {
                burst += 1;
            }
        }
        let ratio = burst as f64 / base as f64;
        assert!((8.0..12.5).contains(&ratio), "burst/base ratio {ratio:.2}");
        // Cycle-averaged mean gap: 5.5M/s average rate.
        let expect = 1e12 / 5.5e6;
        assert!((p.mean_gap_ps() / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_varying_quiet_segments_are_silent() {
        // 1 ms active, 3 ms dead quiet, cycling.
        let p = ArrivalProcess::time_varying(vec![(1_000_000_000, 2e6), (3_000_000_000, 0.0)]);
        let ts = arrivals_in(&p, 20_000_000_000, 5);
        assert!(ts.len() > 1000, "active segments must produce arrivals");
        assert!(
            ts.iter().all(|t| t % 4_000_000_000 < 1_000_000_000),
            "no arrival may land in a quiet segment"
        );
    }

    #[test]
    fn diurnal_burst_splits_the_period() {
        let p = ArrivalProcess::diurnal_burst(1e5, 4e6, 10_000_000_000, 0.2);
        match &p {
            ArrivalProcess::TimeVarying { segments } => {
                assert_eq!(segments.len(), 2);
                assert_eq!(segments[0].dur_ps + segments[1].dur_ps, 10_000_000_000);
                assert_eq!(segments[1].dur_ps, 2_000_000_000);
                assert_eq!(segments[1].rate_hz, 4e6);
            }
            other => panic!("expected TimeVarying, got {other:?}"),
        }
    }

    #[test]
    fn stationary_next_gap_at_ps_matches_next_gap_ps() {
        // The at-time entry point must consume the identical RNG stream
        // for stationary processes (golden-trace compatibility).
        for p in [
            ArrivalProcess::Poisson { rate_hz: 1e6 },
            ArrivalProcess::FixedRate { rate_hz: 1e6 },
            ArrivalProcess::ClosedLoop {
                median_gap_ps: 1_000_000,
            },
        ] {
            let mut a = SmallRng::seed_from_u64(3);
            let mut b = SmallRng::seed_from_u64(3);
            for now in [0u64, 17, 1_000_000_007] {
                assert_eq!(p.next_gap_at_ps(now, &mut a), p.next_gap_ps(&mut b));
            }
        }
    }

    #[test]
    fn equal_seeds_give_identical_gap_streams() {
        let p = ArrivalProcess::Poisson { rate_hz: 1e6 };
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| p.next_gap_ps(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
