//! Flow arrival processes for dynamic traffic.
//!
//! The open-loop evaluation ("FCT slowdown vs. offered load") drives each
//! host with an independent arrival process whose rate is derived from a
//! target load fraction of the host NIC: `rate = load × link_bps / (8 ×
//! mean_flow_size)`. All sampling is inverse-transform over the world's
//! seeded RNG stream, so equal seeds give bit-identical arrival times —
//! the contract the parallel sweep layer relies on.

use rand::rngs::SmallRng;
use rand::Rng;

/// Picoseconds per second, the unit arrival gaps are expressed in.
const PS_PER_S: f64 = 1e12;

/// How a host decides when its next flow starts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals: exponential inter-arrival gaps with
    /// mean `1/rate_hz` — the standard load-sweep model.
    Poisson { rate_hz: f64 },
    /// Deterministic fixed-rate arrivals: constant gap `1/rate_hz`
    /// (isolates queueing from arrival burstiness).
    FixedRate { rate_hz: f64 },
    /// Closed-loop think time: exponential gap with the given *median*
    /// (the paper's Figure 23 uses a 1 ms median inter-flow gap). As a
    /// gap generator this is an exponential with mean `median / ln 2`.
    ClosedLoop { median_gap_ps: u64 },
}

impl ArrivalProcess {
    /// The Poisson process that offers `load` (fraction of `link_bps`)
    /// given flows of `mean_flow_bytes` on average.
    pub fn poisson_for_load(load: f64, link_bps: u64, mean_flow_bytes: f64) -> ArrivalProcess {
        assert!(load > 0.0 && load < 1.5, "load {load} out of range");
        assert!(mean_flow_bytes > 0.0);
        ArrivalProcess::Poisson {
            rate_hz: load * link_bps as f64 / (8.0 * mean_flow_bytes),
        }
    }

    /// Mean inter-arrival gap in picoseconds.
    pub fn mean_gap_ps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } | ArrivalProcess::FixedRate { rate_hz } => {
                PS_PER_S / rate_hz
            }
            ArrivalProcess::ClosedLoop { median_gap_ps } => {
                median_gap_ps as f64 / std::f64::consts::LN_2
            }
        }
    }

    /// Draw the next inter-arrival gap.
    pub fn next_gap_ps(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::ClosedLoop { .. } => {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (-u.ln() * self.mean_gap_ps()) as u64
            }
            ArrivalProcess::FixedRate { .. } => self.mean_gap_ps() as u64,
        }
    }
}

/// Closed-loop arrival gaps: exponential with a given median (the paper
/// uses a 1 ms median inter-flow gap for Figure 23).
pub fn closed_loop_gap_ps(median_ps: u64, rng: &mut SmallRng) -> u64 {
    ArrivalProcess::ClosedLoop {
        median_gap_ps: median_ps,
    }
    .next_gap_ps(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let rate = 50_000.0; // 50k flows/s => mean gap 20 us
        let p = ArrivalProcess::Poisson { rate_hz: rate };
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| p.next_gap_ps(&mut rng) as f64).sum();
        let mean = sum / n as f64;
        let expect = PS_PER_S / rate;
        assert!(
            (mean / expect - 1.0).abs() < 0.02,
            "mean gap {mean:.0} ps vs 1/rate {expect:.0} ps"
        );
    }

    #[test]
    fn fixed_rate_gaps_are_constant() {
        let p = ArrivalProcess::FixedRate { rate_hz: 1_000.0 };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(p.next_gap_ps(&mut rng), 1_000_000_000); // 1 ms
        }
    }

    #[test]
    fn closed_loop_gap_median_matches() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut gaps: Vec<u64> = (0..20_000)
            .map(|_| closed_loop_gap_ps(1_000_000_000, &mut rng))
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!((median / 1e9 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn load_resolves_to_rate() {
        // 30 % of 10 Gb/s with 1.5 MB flows: 0.3 * 1.25e9 / 1.5e6 = 250/s.
        let p = ArrivalProcess::poisson_for_load(0.3, 10_000_000_000, 1_500_000.0);
        match p {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!((rate_hz - 250.0).abs() < 1e-9, "rate {rate_hz}");
            }
            other => panic!("expected Poisson, got {other:?}"),
        }
        assert!((p.mean_gap_ps() - 4e9).abs() < 1.0); // 4 ms mean gap
    }

    #[test]
    fn equal_seeds_give_identical_gap_streams() {
        let p = ArrivalProcess::Poisson { rate_hz: 1e6 };
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| p.next_gap_ps(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
