//! Open-loop dynamic traffic: every host runs an independent arrival
//! process and flow-size distribution, and [`DynamicWorkload`] merges the
//! per-host streams into one time-ordered iterator of flow events.
//!
//! Determinism contract: each host's stream is a pure function of
//! `(seed, host)` — its RNG is seeded by mixing the two — and the merge
//! breaks ties by host index, so the event sequence is bit-identical for
//! equal seeds regardless of machine, thread count or iteration pattern.
//! The parallel sweep layer in `ndp-experiments` relies on this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arrival::ArrivalProcess;
use crate::empirical::EmpiricalCdf;
use crate::uniform_where;

/// One flow to be spawned: start time (ps), endpoints, size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    pub start_ps: u64,
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// SplitMix64 finalizer: decorrelates per-host RNG seeds so host streams
/// are independent even for adjacent master seeds.
pub(crate) fn mix_seed(seed: u64, host: u64) -> u64 {
    let mut z = seed ^ host.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The next pending arrival of one host, ordered `(time, host)` so the
/// merge is total and deterministic.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    at_ps: u64,
    host: u32,
}

/// A time-ordered stream of `(start, src, dst, bytes)` flow events over
/// `n_hosts` hosts, up to (and excluding) `horizon_ps`.
///
/// Destinations are uniformly random among the other hosts; sizes come
/// from the [`EmpiricalCdf`]; start times from the per-host
/// [`ArrivalProcess`].
pub struct DynamicWorkload {
    process: ArrivalProcess,
    sizes: EmpiricalCdf,
    horizon_ps: u64,
    n_hosts: u32,
    rngs: Vec<SmallRng>,
    heap: BinaryHeap<Reverse<Pending>>,
}

impl DynamicWorkload {
    pub fn new(
        n_hosts: usize,
        process: ArrivalProcess,
        sizes: EmpiricalCdf,
        seed: u64,
        horizon_ps: u64,
    ) -> DynamicWorkload {
        assert!(n_hosts >= 2, "need at least two hosts for traffic");
        let mut rngs: Vec<SmallRng> = (0..n_hosts)
            .map(|h| SmallRng::seed_from_u64(mix_seed(seed, h as u64)))
            .collect();
        let mut heap = BinaryHeap::with_capacity(n_hosts);
        for (h, rng) in rngs.iter_mut().enumerate() {
            let first = match process {
                // Phase-stagger deterministic arrivals so hosts don't fire
                // in lockstep bursts.
                ArrivalProcess::FixedRate { .. } => {
                    let gap = process.mean_gap_ps() as u64;
                    gap + gap * h as u64 / n_hosts as u64
                }
                _ => process.next_gap_at_ps(0, rng),
            };
            if first < horizon_ps {
                heap.push(Reverse(Pending {
                    at_ps: first,
                    host: h as u32,
                }));
            }
        }
        DynamicWorkload {
            process,
            sizes,
            horizon_ps,
            n_hosts: n_hosts as u32,
            rngs,
            heap,
        }
    }

    /// The mean offered rate per host, in bits/sec (diagnostics).
    pub fn offered_bps_per_host(&self) -> f64 {
        8.0 * self.sizes.mean_size() / (self.process.mean_gap_ps() / 1e12)
    }
}

impl Iterator for DynamicWorkload {
    type Item = FlowEvent;

    fn next(&mut self) -> Option<FlowEvent> {
        let Reverse(Pending { at_ps, host }) = self.heap.pop()?;
        let rng = &mut self.rngs[host as usize];
        let bytes = self.sizes.sample(rng);
        let src = host as usize;
        let dst = uniform_where(self.n_hosts as usize, rng, |d| d != src) as u32;
        let next = at_ps.saturating_add(self.process.next_gap_at_ps(at_ps, rng));
        if next < self.horizon_ps {
            self.heap.push(Reverse(Pending { at_ps: next, host }));
        }
        Some(FlowEvent {
            start_ps: at_ps,
            src: host,
            dst,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> DynamicWorkload {
        DynamicWorkload::new(
            16,
            ArrivalProcess::Poisson { rate_hz: 100_000.0 },
            EmpiricalCdf::websearch(),
            seed,
            10_000_000_000, // 10 ms
        )
    }

    #[test]
    fn events_are_time_ordered_and_valid() {
        let evs: Vec<FlowEvent> = workload(1).collect();
        assert!(evs.len() > 100, "expected ~16 flows/ms, got {}", evs.len());
        let mut prev = 0u64;
        for e in &evs {
            assert!(e.start_ps >= prev, "events must be time-ordered");
            assert!(e.start_ps < 10_000_000_000);
            assert!(e.src < 16 && e.dst < 16 && e.src != e.dst);
            assert!(e.bytes >= 1460);
            prev = e.start_ps;
        }
        // Every host participates as a source.
        let srcs: std::collections::HashSet<u32> = evs.iter().map(|e| e.src).collect();
        assert_eq!(srcs.len(), 16);
    }

    #[test]
    fn equal_seeds_are_bit_identical_and_seeds_differ() {
        let a: Vec<FlowEvent> = workload(7).collect();
        let b: Vec<FlowEvent> = workload(7).collect();
        let c: Vec<FlowEvent> = workload(8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offered_rate_tracks_the_target() {
        // 100k flows/s/host × mean websearch size ≈ measured bytes/time.
        let wl = workload(3);
        let offered = wl.offered_bps_per_host();
        let evs: Vec<FlowEvent> = wl.collect();
        let total_bytes: u64 = evs.iter().map(|e| e.bytes).sum();
        let measured = total_bytes as f64 * 8.0 / (16.0 * 0.01); // bps/host
        assert!(
            (measured / offered - 1.0).abs() < 0.3,
            "measured {measured:.2e} vs offered {offered:.2e}"
        );
    }

    #[test]
    fn fixed_rate_staggers_hosts() {
        let wl = DynamicWorkload::new(
            4,
            ArrivalProcess::FixedRate { rate_hz: 1000.0 },
            EmpiricalCdf::websearch(),
            1,
            4_000_000_000, // 4 ms = 4 gaps
        );
        let evs: Vec<FlowEvent> = wl.collect();
        // Hosts fire at distinct phases, not in lockstep.
        let t0: Vec<u64> = (0..4)
            .map(|h| evs.iter().find(|e| e.src == h).unwrap().start_ps)
            .collect();
        let distinct: std::collections::HashSet<u64> = t0.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "phases {t0:?}");
    }
}
