//! Empirical flow-size distributions: piecewise-linear inverse CDFs with
//! an analytic mean, so an offered-load fraction resolves to an arrival
//! rate without Monte-Carlo calibration.
//!
//! The two embedded distributions are the standard benchmarks the
//! low-latency-DC literature sweeps loads over (pFabric, pHost, Homa,
//! PL2, ...): the DCTCP *web search* workload and the VL2 *data mining*
//! workload, both expressed here in bytes (original traces count
//! 1460-byte packets).

use rand::rngs::SmallRng;
use rand::Rng;

/// An empirical flow-size CDF: `(cumulative probability, size in bytes)`
/// knots with linear interpolation in size space between them.
///
/// Inverse-transform sampling makes draws deterministic per RNG stream,
/// and the piecewise-linear form gives a closed-form [`mean_size`], which
/// is what turns "60 % offered load" into a Poisson arrival rate
/// (`rate = load × link_bps / (8 × mean_size)`).
///
/// [`mean_size`]: EmpiricalCdf::mean_size
#[derive(Clone, Debug, PartialEq)]
pub struct EmpiricalCdf {
    name: &'static str,
    /// Sorted knots; first probability is 0.0, last is 1.0.
    knots: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build a CDF from `(cumulative probability, bytes)` knots.
    ///
    /// Panics on malformed input: fewer than two knots, probabilities not
    /// spanning [0, 1] monotonically, or non-positive / decreasing sizes —
    /// all construction-time bugs, not runtime conditions.
    pub fn new(name: &'static str, knots: Vec<(f64, f64)>) -> EmpiricalCdf {
        assert!(knots.len() >= 2, "{name}: need at least two knots");
        assert!(
            knots.first().unwrap().0 == 0.0 && knots.last().unwrap().0 == 1.0,
            "{name}: probabilities must span [0, 1]"
        );
        for w in knots.windows(2) {
            assert!(w[0].0 <= w[1].0, "{name}: probabilities must be sorted");
            assert!(
                w[0].1 <= w[1].1,
                "{name}: sizes must be non-decreasing with probability"
            );
        }
        assert!(knots[0].1 > 0.0, "{name}: sizes must be positive");
        EmpiricalCdf { name, knots }
    }

    /// The DCTCP web-search workload (Alizadeh et al.), the canonical
    /// "mostly mice, heavy elephant tail" RPC mix: median ~19 KB, mean
    /// ~1.6 MB, maximum ~29 MB.
    pub fn websearch() -> EmpiricalCdf {
        const P: f64 = 1460.0; // original trace counts 1460-byte packets
        EmpiricalCdf::new(
            "websearch",
            vec![
                (0.0, P),
                (0.15, 6.0 * P),
                (0.2, 13.0 * P),
                (0.3, 19.0 * P),
                (0.4, 33.0 * P),
                (0.53, 53.0 * P),
                (0.6, 133.0 * P),
                (0.7, 667.0 * P),
                (0.8, 1333.0 * P),
                (0.9, 3333.0 * P),
                (0.97, 6667.0 * P),
                (1.0, 20000.0 * P),
            ],
        )
    }

    /// The VL2 data-mining workload (Greenberg et al.): half the flows fit
    /// in one packet, but the top 2 % reach hundreds of megabytes, pulling
    /// the mean to ~13 MB — the hardest case for slowdown tails.
    pub fn datamining() -> EmpiricalCdf {
        const P: f64 = 1460.0;
        EmpiricalCdf::new(
            "datamining",
            vec![
                (0.0, P),
                (0.5, P),
                (0.6, 2.0 * P),
                (0.7, 3.0 * P),
                (0.8, 7.0 * P),
                (0.9, 267.0 * P),
                (0.95, 2107.0 * P),
                (0.98, 66667.0 * P),
                (1.0, 666667.0 * P),
            ],
        )
    }

    /// A degenerate point-mass distribution: every draw is `bytes`.
    /// Lets fixed-size traffic (RPC ping-pong requests, background blast
    /// flows) flow through the same sampling plumbing as empirical mixes.
    pub fn fixed(name: &'static str, bytes: u64) -> EmpiricalCdf {
        let b = bytes as f64;
        EmpiricalCdf::new(name, vec![(0.0, b), (1.0, b)])
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Analytic mean of the piecewise-linear distribution: each segment
    /// contributes `Δp × (lo + hi) / 2` (uniform within the segment).
    pub fn mean_size(&self) -> f64 {
        self.knots
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
            .sum()
    }

    /// Largest size the distribution can produce.
    pub fn max_size(&self) -> u64 {
        self.knots.last().unwrap().1 as u64
    }

    /// Size at cumulative probability `p` (linear interpolation).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let mut prev = self.knots[0];
        for &pt in &self.knots[1..] {
            if p <= pt.0 {
                let span = pt.0 - prev.0;
                let f = if span <= 0.0 {
                    1.0
                } else {
                    (p - prev.0) / span
                };
                return prev.1 + f * (pt.1 - prev.1);
            }
            prev = pt;
        }
        self.knots.last().unwrap().1
    }

    /// Inverse-transform sample, floored at one byte.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        (self.quantile(rng.gen::<f64>()) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn websearch_quantiles_match_knots() {
        let d = EmpiricalCdf::websearch();
        assert_eq!(d.quantile(0.0), 1460.0);
        assert_eq!(d.quantile(0.3), 19.0 * 1460.0);
        assert_eq!(d.quantile(1.0), 20000.0 * 1460.0);
        assert_eq!(d.max_size(), 29_200_000);
        // Interpolation: halfway through the (0.9, 0.97) segment.
        let mid = d.quantile(0.935);
        assert!((mid - (3333.0 + 6667.0) / 2.0 * 1460.0).abs() < 1.0);
    }

    #[test]
    fn sample_mean_converges_to_analytic_mean() {
        // The determinism contract makes this exact per seed; the loose
        // tolerance guards the estimator, not the RNG.
        for d in [EmpiricalCdf::websearch(), EmpiricalCdf::datamining()] {
            let mut rng = SmallRng::seed_from_u64(7);
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
            let sample_mean = sum / n as f64;
            let mean = d.mean_size();
            let err = (sample_mean - mean).abs() / mean;
            assert!(
                err < 0.05,
                "{}: sample mean {sample_mean:.0} vs analytic {mean:.0} ({:.1}% off)",
                d.name(),
                err * 100.0
            );
        }
    }

    #[test]
    fn means_match_literature() {
        // Web search ≈ 1.67 MB, data mining ≈ 13 MB.
        let ws = EmpiricalCdf::websearch().mean_size();
        assert!((1.5e6..1.8e6).contains(&ws), "websearch mean {ws:.0}");
        let dm = EmpiricalCdf::datamining().mean_size();
        assert!((12e6..14e6).contains(&dm), "datamining mean {dm:.0}");
    }

    #[test]
    fn equal_seeds_produce_identical_streams() {
        let d = EmpiricalCdf::datamining();
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "span")]
    fn rejects_partial_probability_range() {
        EmpiricalCdf::new("bad", vec![(0.1, 100.0), (1.0, 200.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_sizes() {
        EmpiricalCdf::new("bad", vec![(0.0, 200.0), (0.5, 100.0), (1.0, 300.0)]);
    }
}
