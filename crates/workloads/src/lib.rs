//! Traffic matrices, flow-size distributions and dynamic (open-loop)
//! traffic for the evaluation.
//!
//! Static matrices (all flows start together):
//!
//! * [`permutation`] — the paper's worst-case matrix: every host sends to
//!   exactly one host and receives from exactly one (a derangement).
//! * [`random_matrix`] — each host sends to a uniformly random other host
//!   (receivers may collide — the "Random" curve of Figure 4).
//! * [`incast`] — N workers answer one frontend.
//! * [`FlowSizeDist`] — synthetic flow-size models (Figure 23's Facebook
//!   web stand-in).
//!
//! Dynamic traffic (flows arrive over simulated time):
//!
//! * [`ArrivalProcess`] — Poisson / fixed-rate / closed-loop gap models,
//!   with [`ArrivalProcess::poisson_for_load`] resolving a target load
//!   fraction of the host NIC to an arrival rate.
//! * [`EmpiricalCdf`] — piecewise-linear flow-size CDFs with an analytic
//!   [`EmpiricalCdf::mean_size`]; the embedded *web search* and *data
//!   mining* distributions are the literature's standard load-sweep mixes.
//! * [`DynamicWorkload`] — merges per-host streams into one time-ordered
//!   iterator of `(start, src, dst, bytes)` events.
//!
//! RPC serving traffic (requests are *trees* of flows):
//!
//! * [`RpcProfile`] / [`TenantMix`] — per-tenant fan-out degree, leg and
//!   response size distributions, arrival process and SLO deadline.
//! * [`RpcWorkload`] — time-ordered stream of [`RpcRequest`] trees:
//!   N shard fetches fanning in on the client plus an optional upstream
//!   response flow, with open- and closed-loop (think-time) tenants.
//! * [`ArrivalProcess::time_varying`] — piecewise-rate / diurnal-burst
//!   arrival schedules for sustained load-swing campaigns.

pub mod arrival;
pub mod dynamic;
pub mod empirical;
pub mod rpc;

pub use arrival::{closed_loop_gap_ps, ArrivalProcess, RateSegment};
pub use dynamic::{DynamicWorkload, FlowEvent};
pub use empirical::EmpiricalCdf;
pub use rpc::{FlowLeg, RpcProfile, RpcRequest, RpcWorkload, TenantMix, TreeShape};

use rand::rngs::SmallRng;
use rand::Rng;

/// Uniform draw from `0..n` restricted to values satisfying `keep`, by
/// rejection. The shared destination sampler behind [`random_matrix`],
/// [`DynamicWorkload`] and the experiment harnesses ("any host but
/// myself", "any remote rack", ...).
///
/// The predicate must accept at least one value in `0..n` or this loops
/// forever — matrix builders uphold that by construction (n ≥ 2 with a
/// single excluded self).
pub fn uniform_where(n: usize, rng: &mut SmallRng, keep: impl Fn(usize) -> bool) -> usize {
    loop {
        let d = rng.gen_range(0..n);
        if keep(d) {
            return d;
        }
    }
}

/// In-place Fisher–Yates shuffle — the single shuffle implementation
/// behind [`permutation`] and [`incast`], so their draw sequences stay
/// pinned in one place.
fn fisher_yates<T>(xs: &mut [T], rng: &mut SmallRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Debug-time invariant for any destination matrix: in-range, never self.
fn debug_assert_matrix(out: &[usize]) {
    debug_assert!(
        out.iter()
            .enumerate()
            .all(|(i, &d)| i != d && d < out.len()),
        "matrix invariant violated: self-send or out-of-range destination"
    );
}

/// A random derangement: `out[i]` is the destination of host `i`, never
/// equal to `i`, and every host appears exactly once as a destination.
pub fn permutation(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(n >= 2);
    loop {
        let mut perm: Vec<usize> = (0..n).collect();
        fisher_yates(&mut perm, rng);
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            debug_assert_matrix(&perm);
            return perm;
        }
    }
}

/// Each host picks a uniformly random destination other than itself.
pub fn random_matrix(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let out: Vec<usize> = (0..n).map(|i| uniform_where(n, rng, |d| d != i)).collect();
    debug_assert_matrix(&out);
    out
}

/// `n` distinct workers (excluding the frontend) for an incast.
pub fn incast(frontend: usize, n: usize, n_hosts: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(
        n < n_hosts,
        "incast degree must leave room for the frontend"
    );
    let mut pool: Vec<usize> = (0..n_hosts).filter(|&h| h != frontend).collect();
    fisher_yates(&mut pool, rng);
    pool.truncate(n);
    debug_assert!(
        !pool.contains(&frontend) && pool.iter().all(|&w| w < n_hosts),
        "incast workers must exclude the frontend and stay in range"
    );
    pool
}

/// Flow-size models.
#[derive(Clone, Debug)]
pub enum FlowSizeDist {
    Fixed(u64),
    Uniform {
        lo: u64,
        hi: u64,
    },
    /// Synthetic match of the Facebook web workload's flow sizes [34]:
    /// dominated by sub-10 KB flows with a heavy tail to ~10 MB.
    FacebookWeb,
}

impl FlowSizeDist {
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            FlowSizeDist::Fixed(s) => s,
            FlowSizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            FlowSizeDist::FacebookWeb => {
                // Piecewise-linear inverse CDF in log-size space.
                const Q: &[(f64, f64)] = &[
                    (0.00, 100.0),
                    (0.15, 300.0),
                    (0.50, 2_400.0),
                    (0.80, 10_000.0),
                    (0.95, 100_000.0),
                    (0.99, 1_000_000.0),
                    (1.00, 10_000_000.0),
                ];
                let u: f64 = rng.gen();
                let mut prev = Q[0];
                for &pt in &Q[1..] {
                    if u <= pt.0 {
                        let f = (u - prev.0) / (pt.0 - prev.0);
                        let lo = prev.1.ln();
                        let hi = pt.1.ln();
                        return (lo + f * (hi - lo)).exp() as u64;
                    }
                    prev = pt;
                }
                Q[Q.len() - 1].1 as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn permutation_is_derangement() {
        let mut r = rng();
        for n in [2, 3, 8, 432] {
            let p = permutation(n, &mut r);
            let mut seen = vec![false; n];
            for (i, &d) in p.iter().enumerate() {
                assert_ne!(i, d);
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
    }

    #[test]
    fn random_matrix_avoids_self() {
        let mut r = rng();
        let m = random_matrix(100, &mut r);
        assert!(m.iter().enumerate().all(|(i, &d)| i != d && d < 100));
    }

    #[test]
    fn uniform_where_respects_predicate() {
        let mut r = rng();
        for _ in 0..1000 {
            let d = uniform_where(10, &mut r, |d| d != 3 && d % 2 == 0);
            assert!(d % 2 == 0 && d != 3 && d < 10);
        }
    }

    #[test]
    fn incast_workers_are_distinct_and_exclude_frontend() {
        let mut r = rng();
        let workers = incast(7, 50, 128, &mut r);
        assert_eq!(workers.len(), 50);
        assert!(!workers.contains(&7));
        let mut sorted = workers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn facebook_web_is_heavy_tailed() {
        let mut r = rng();
        let d = FlowSizeDist::FacebookWeb;
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let small = samples.iter().filter(|&&s| s <= 10_000).count() as f64;
        let huge = samples.iter().filter(|&&s| s >= 1_000_000).count() as f64;
        let n = samples.len() as f64;
        assert!(small / n > 0.7, "most flows are mice: {}", small / n);
        assert!(huge / n < 0.03, "elephants are rare: {}", huge / n);
        assert!(samples.iter().any(|&s| s > 2_000_000), "tail exists");
        // Mean is pulled far above the median by the tail.
        let mean = samples.iter().sum::<u64>() as f64 / n;
        let mut s = samples.clone();
        s.sort_unstable();
        let median = s[s.len() / 2] as f64;
        assert!(mean > 5.0 * median);
    }

    #[test]
    fn fixed_and_uniform() {
        let mut r = rng();
        assert_eq!(FlowSizeDist::Fixed(777).sample(&mut r), 777);
        for _ in 0..100 {
            let s = FlowSizeDist::Uniform { lo: 10, hi: 20 }.sample(&mut r);
            assert!((10..=20).contains(&s));
        }
    }
}
