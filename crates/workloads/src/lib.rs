//! Traffic matrices and flow-size distributions for the evaluation.
//!
//! * [`permutation`] — the paper's worst-case matrix: every host sends to
//!   exactly one host and receives from exactly one (a derangement).
//! * [`random_matrix`] — each host sends to a uniformly random other host
//!   (receivers may collide — the "Random" curve of Figure 4).
//! * [`incast`] — N workers answer one frontend.
//! * [`FlowSizeDist`] — flow-size models, including a synthetic match of
//!   the Facebook *web* workload used in Figure 23 (heavy mass of tiny
//!   flows, a thin tail of multi-MB ones; see DESIGN.md for the
//!   substitution note).

use rand::rngs::SmallRng;
use rand::Rng;

/// A random derangement: `out[i]` is the destination of host `i`, never
/// equal to `i`, and every host appears exactly once as a destination.
pub fn permutation(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(n >= 2);
    loop {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            return perm;
        }
    }
}

/// Each host picks a uniformly random destination other than itself.
pub fn random_matrix(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    (0..n)
        .map(|i| loop {
            let d = rng.gen_range(0..n);
            if d != i {
                break d;
            }
        })
        .collect()
}

/// `n` distinct workers (excluding the frontend) for an incast.
pub fn incast(frontend: usize, n: usize, n_hosts: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(
        n < n_hosts,
        "incast degree must leave room for the frontend"
    );
    let mut pool: Vec<usize> = (0..n_hosts).filter(|&h| h != frontend).collect();
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

/// Flow-size models.
#[derive(Clone, Debug)]
pub enum FlowSizeDist {
    Fixed(u64),
    Uniform {
        lo: u64,
        hi: u64,
    },
    /// Synthetic match of the Facebook web workload's flow sizes [34]:
    /// dominated by sub-10 KB flows with a heavy tail to ~10 MB.
    FacebookWeb,
}

impl FlowSizeDist {
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            FlowSizeDist::Fixed(s) => s,
            FlowSizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            FlowSizeDist::FacebookWeb => {
                // Piecewise-linear inverse CDF in log-size space.
                const Q: &[(f64, f64)] = &[
                    (0.00, 100.0),
                    (0.15, 300.0),
                    (0.50, 2_400.0),
                    (0.80, 10_000.0),
                    (0.95, 100_000.0),
                    (0.99, 1_000_000.0),
                    (1.00, 10_000_000.0),
                ];
                let u: f64 = rng.gen();
                let mut prev = Q[0];
                for &pt in &Q[1..] {
                    if u <= pt.0 {
                        let f = (u - prev.0) / (pt.0 - prev.0);
                        let lo = prev.1.ln();
                        let hi = pt.1.ln();
                        return (lo + f * (hi - lo)).exp() as u64;
                    }
                    prev = pt;
                }
                Q[Q.len() - 1].1 as u64
            }
        }
    }
}

/// Closed-loop arrival gaps: exponential with a given median (the paper
/// uses a 1 ms median inter-flow gap for Figure 23).
pub fn closed_loop_gap_ps(median_ps: u64, rng: &mut SmallRng) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    // median of Exp(λ) is ln2/λ.
    let scale = median_ps as f64 / std::f64::consts::LN_2;
    (-u.ln() * scale) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn permutation_is_derangement() {
        let mut r = rng();
        for n in [2, 3, 8, 432] {
            let p = permutation(n, &mut r);
            let mut seen = vec![false; n];
            for (i, &d) in p.iter().enumerate() {
                assert_ne!(i, d);
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
    }

    #[test]
    fn random_matrix_avoids_self() {
        let mut r = rng();
        let m = random_matrix(100, &mut r);
        assert!(m.iter().enumerate().all(|(i, &d)| i != d && d < 100));
    }

    #[test]
    fn incast_workers_are_distinct_and_exclude_frontend() {
        let mut r = rng();
        let workers = incast(7, 50, 128, &mut r);
        assert_eq!(workers.len(), 50);
        assert!(!workers.contains(&7));
        let mut sorted = workers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn facebook_web_is_heavy_tailed() {
        let mut r = rng();
        let d = FlowSizeDist::FacebookWeb;
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let small = samples.iter().filter(|&&s| s <= 10_000).count() as f64;
        let huge = samples.iter().filter(|&&s| s >= 1_000_000).count() as f64;
        let n = samples.len() as f64;
        assert!(small / n > 0.7, "most flows are mice: {}", small / n);
        assert!(huge / n < 0.03, "elephants are rare: {}", huge / n);
        assert!(samples.iter().any(|&s| s > 2_000_000), "tail exists");
        // Mean is pulled far above the median by the tail.
        let mean = samples.iter().sum::<u64>() as f64 / n;
        let mut s = samples.clone();
        s.sort_unstable();
        let median = s[s.len() / 2] as f64;
        assert!(mean > 5.0 * median);
    }

    #[test]
    fn closed_loop_gap_median_matches() {
        let mut r = rng();
        let mut gaps: Vec<u64> = (0..20_000)
            .map(|_| closed_loop_gap_ps(1_000_000_000, &mut r))
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!((median / 1e9 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn fixed_and_uniform() {
        let mut r = rng();
        assert_eq!(FlowSizeDist::Fixed(777).sample(&mut r), 777);
        for _ in 0..100 {
            let s = FlowSizeDist::Uniform { lo: 10, hi: 20 }.sample(&mut r);
            assert!((10..=20).contains(&s));
        }
    }
}
