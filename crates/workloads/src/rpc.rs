//! RPC serving workload: fan-out/fan-in request trees over tenant mixes.
//!
//! A *request* is a tree of flows, not a single flow. In the default
//! [`TreeShape::FanIn`] shape a client request fans out to `fanout`
//! distinct shard servers whose responses converge on the client NIC —
//! the natural N:1 incast the paper's §5.6 serving claim is about — and
//! an optional upstream response flow leaves the client once the last
//! shard answer lands. The request is *done* when its final flow is done;
//! end-to-end request latency (not per-flow FCT) is what the RPC metrics
//! family books.
//!
//! Per-tenant [`RpcProfile`]s (fan-out degree, leg/response size
//! distributions from [`EmpiricalCdf`], arrival process, SLO deadline)
//! compose into a [`TenantMix`]; [`RpcWorkload`] merges the per-tenant
//! streams into one time-ordered request sequence.
//!
//! Determinism contract (same as [`DynamicWorkload`]): each tenant's
//! stream is a pure function of `(seed, tenant)` via SplitMix64 mixing,
//! and the merge breaks ties by tenant index, so request trees are
//! bit-identical for equal seeds regardless of thread count or scheduler.
//!
//! [`DynamicWorkload`]: crate::DynamicWorkload

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrival::ArrivalProcess;
use crate::dynamic::mix_seed;
use crate::empirical::EmpiricalCdf;
use crate::{incast, uniform_where};

/// One flow inside a request tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowLeg {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// How a request's flow tree is shaped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// `fanout` shard fetches (distinct shards → client, an N:1 incast on
    /// the client ToR) in parallel; the optional response flow
    /// (client → random upstream) starts after the last shard answer.
    FanIn,
    /// Request/response ping-pong: one client → server flow, then the
    /// optional server → client response — the Figure 8 RPC loop shape.
    PingPong,
}

/// One tenant's RPC behaviour: tree shape and degree, size distributions,
/// arrival process, and the latency deadline its SLO is graded against.
#[derive(Clone, Debug)]
pub struct RpcProfile {
    pub name: &'static str,
    pub shape: TreeShape,
    /// Shard fetches per request (`FanIn`); must be 1 for `PingPong`.
    pub fanout: usize,
    /// Size distribution of each parallel leg (shard answers for `FanIn`,
    /// the request flow for `PingPong`).
    pub leg_sizes: EmpiricalCdf,
    /// Size distribution of the sequential follow-up flow, if any.
    pub response_sizes: Option<EmpiricalCdf>,
    /// Tenant-aggregate arrival process. `ClosedLoop` makes the tenant
    /// self-clocked: the next request follows the previous completion by
    /// a think-time gap (see [`RpcWorkload::on_complete`]).
    pub arrivals: ArrivalProcess,
    /// Outstanding request chains for a `ClosedLoop` tenant (ignored for
    /// open-loop arrivals).
    pub closed_loop_width: usize,
    /// End-to-end latency deadline this tenant's SLO attainment is
    /// measured against.
    pub slo_ps: u64,
    /// Hosts that may issue requests; `None` means every host.
    pub clients: Option<Vec<u32>>,
}

impl RpcProfile {
    /// Mean bytes a single request moves across the fabric.
    pub fn mean_request_bytes(&self) -> f64 {
        self.fanout as f64 * self.leg_sizes.mean_size()
            + self
                .response_sizes
                .as_ref()
                .map_or(0.0, |cdf| cdf.mean_size())
    }

    /// The tenant-aggregate Poisson rate that offers `load` (fraction of
    /// one `link_bps` NIC) on the average client's fan-in path, given
    /// requests spread over `n_clients` clients. The bottleneck of a
    /// fan-in tree is the client NIC, which receives `fanout × mean leg`
    /// bytes per request.
    pub fn rate_for_client_load(&self, load: f64, link_bps: u64, n_clients: usize) -> f64 {
        assert!(load > 0.0 && load < 1.5, "load {load} out of range");
        let fan_in_bytes = self.fanout as f64 * self.leg_sizes.mean_size();
        load * n_clients as f64 * link_bps as f64 / (8.0 * fan_in_bytes)
    }

    fn validate(&self, n_hosts: usize) {
        assert!(self.fanout >= 1, "{}: fanout must be >= 1", self.name);
        assert!(
            self.fanout < n_hosts,
            "{}: fanout {} needs more than {} hosts",
            self.name,
            self.fanout,
            n_hosts
        );
        if self.shape == TreeShape::PingPong {
            assert_eq!(self.fanout, 1, "{}: ping-pong is fanout 1", self.name);
        }
        assert!(self.slo_ps > 0, "{}: SLO deadline required", self.name);
        if let Some(clients) = &self.clients {
            assert!(!clients.is_empty(), "{}: empty client set", self.name);
            assert!(
                clients.iter().all(|&c| (c as usize) < n_hosts),
                "{}: client out of range",
                self.name
            );
        }
        if matches!(self.arrivals, ArrivalProcess::ClosedLoop { .. }) {
            assert!(
                self.closed_loop_width >= 1,
                "{}: closed loop needs at least one chain",
                self.name
            );
        }
    }
}

/// Tenants sharing one fabric.
#[derive(Clone, Debug)]
pub struct TenantMix {
    pub profiles: Vec<RpcProfile>,
}

impl TenantMix {
    pub fn new(profiles: Vec<RpcProfile>) -> TenantMix {
        assert!(!profiles.is_empty(), "tenant mix needs at least one tenant");
        TenantMix { profiles }
    }

    /// The mix reduced to a single tenant — the "alone" baseline for
    /// cross-tenant interference measurements.
    pub fn solo(&self, tenant: usize) -> TenantMix {
        TenantMix::new(vec![self.profiles[tenant].clone()])
    }
}

/// One request tree, fully materialised at generation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcRequest {
    pub start_ps: u64,
    /// Index into the mix's profile list.
    pub tenant: u32,
    /// Per-tenant request sequence number.
    pub seq: u64,
    pub client: u32,
    /// Parallel stage: all legs start at `start_ps`.
    pub legs: Vec<FlowLeg>,
    /// Sequential stage: starts when the last leg completes.
    pub response: Option<FlowLeg>,
}

/// The next pending arrival of one open-loop tenant, ordered
/// `(time, tenant)` so the merge is total and deterministic.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    at_ps: u64,
    tenant: u32,
}

struct TenantState {
    profile: RpcProfile,
    rng: SmallRng,
    next_seq: u64,
}

/// A time-ordered stream of [`RpcRequest`] trees over `n_hosts` hosts, up
/// to (and excluding) `horizon_ps`.
///
/// Open-loop tenants are driven by [`Iterator::next`]; closed-loop
/// tenants seed `closed_loop_width` chains up front (via
/// [`RpcWorkload::initial_closed_loop`]) and produce follow-ups through
/// [`RpcWorkload::on_complete`] as the driver reports completions.
pub struct RpcWorkload {
    tenants: Vec<TenantState>,
    heap: BinaryHeap<Reverse<Pending>>,
    horizon_ps: u64,
    n_hosts: u32,
}

impl RpcWorkload {
    pub fn new(n_hosts: usize, mix: TenantMix, seed: u64, horizon_ps: u64) -> RpcWorkload {
        assert!(n_hosts >= 2, "need at least two hosts for traffic");
        let mut tenants = Vec::with_capacity(mix.profiles.len());
        let mut heap = BinaryHeap::new();
        for (t, profile) in mix.profiles.into_iter().enumerate() {
            profile.validate(n_hosts);
            let mut state = TenantState {
                profile,
                rng: SmallRng::seed_from_u64(mix_seed(seed, t as u64)),
                next_seq: 0,
            };
            if !matches!(state.profile.arrivals, ArrivalProcess::ClosedLoop { .. }) {
                let first = state.profile.arrivals.next_gap_at_ps(0, &mut state.rng);
                if first < horizon_ps {
                    heap.push(Reverse(Pending {
                        at_ps: first,
                        tenant: t as u32,
                    }));
                }
            }
            tenants.push(state);
        }
        RpcWorkload {
            tenants,
            heap,
            horizon_ps,
            n_hosts: n_hosts as u32,
        }
    }

    pub fn horizon_ps(&self) -> u64 {
        self.horizon_ps
    }

    /// The SLO deadline of tenant `t`.
    pub fn slo_ps(&self, t: u32) -> u64 {
        self.tenants[t as usize].profile.slo_ps
    }

    pub fn tenant_names(&self) -> Vec<&'static str> {
        self.tenants.iter().map(|t| t.profile.name).collect()
    }

    /// The initial request chains of every closed-loop tenant: chain 0
    /// fires at t=0, further chains are staggered by one think-time draw
    /// each. Call once before pulling open-loop arrivals.
    pub fn initial_closed_loop(&mut self) -> Vec<RpcRequest> {
        let mut out = Vec::new();
        for t in 0..self.tenants.len() {
            let (is_closed, width) = {
                let p = &self.tenants[t].profile;
                (
                    matches!(p.arrivals, ArrivalProcess::ClosedLoop { .. }),
                    p.closed_loop_width,
                )
            };
            if !is_closed {
                continue;
            }
            for chain in 0..width {
                let at = if chain == 0 {
                    0
                } else {
                    let st = &mut self.tenants[t];
                    st.profile.arrivals.next_gap_at_ps(0, &mut st.rng)
                };
                if at < self.horizon_ps {
                    out.push(self.build_request(t as u32, at));
                }
            }
        }
        out.sort_by_key(|r| (r.start_ps, r.tenant, r.seq));
        out
    }

    /// Report a request completion. For a closed-loop tenant this yields
    /// the chain's next request (previous completion + think-time gap);
    /// open-loop tenants return `None`. Requests past the horizon end the
    /// chain.
    pub fn on_complete(&mut self, tenant: u32, done_ps: u64) -> Option<RpcRequest> {
        let st = &mut self.tenants[tenant as usize];
        if !matches!(st.profile.arrivals, ArrivalProcess::ClosedLoop { .. }) {
            return None;
        }
        let gap = st.profile.arrivals.next_gap_at_ps(done_ps, &mut st.rng);
        let at = done_ps.saturating_add(gap);
        (at < self.horizon_ps).then(|| self.build_request(tenant, at))
    }

    /// Materialise one request tree for tenant `t` at `at_ps`.
    fn build_request(&mut self, tenant: u32, at_ps: u64) -> RpcRequest {
        let n_hosts = self.n_hosts as usize;
        let st = &mut self.tenants[tenant as usize];
        let seq = st.next_seq;
        st.next_seq += 1;
        let rng = &mut st.rng;
        let p = &st.profile;
        let client = match &p.clients {
            Some(set) => set[rng.gen_range(0..set.len())],
            None => rng.gen_range(0..self.n_hosts),
        };
        let (legs, response) = match p.shape {
            TreeShape::FanIn => {
                let shards = incast(client as usize, p.fanout, n_hosts, rng);
                let legs = shards
                    .into_iter()
                    .map(|s| FlowLeg {
                        src: s as u32,
                        dst: client,
                        bytes: p.leg_sizes.sample(rng),
                    })
                    .collect();
                let response = p.response_sizes.as_ref().map(|cdf| {
                    let up = uniform_where(n_hosts, rng, |d| d != client as usize);
                    FlowLeg {
                        src: client,
                        dst: up as u32,
                        bytes: cdf.sample(rng),
                    }
                });
                (legs, response)
            }
            TreeShape::PingPong => {
                let server = uniform_where(n_hosts, rng, |d| d != client as usize) as u32;
                let legs = vec![FlowLeg {
                    src: client,
                    dst: server,
                    bytes: p.leg_sizes.sample(rng),
                }];
                let response = p.response_sizes.as_ref().map(|cdf| FlowLeg {
                    src: server,
                    dst: client,
                    bytes: cdf.sample(rng),
                });
                (legs, response)
            }
        };
        RpcRequest {
            start_ps: at_ps,
            tenant,
            seq,
            client,
            legs,
            response,
        }
    }
}

impl Iterator for RpcWorkload {
    type Item = RpcRequest;

    /// The merged open-loop request stream, time-ordered with ties broken
    /// by tenant index.
    fn next(&mut self) -> Option<RpcRequest> {
        let Reverse(Pending { at_ps, tenant }) = self.heap.pop()?;
        let st = &mut self.tenants[tenant as usize];
        let gap = st.profile.arrivals.next_gap_at_ps(at_ps, &mut st.rng);
        let next = at_ps.saturating_add(gap);
        if next < self.horizon_ps {
            self.heap.push(Reverse(Pending {
                at_ps: next,
                tenant,
            }));
        }
        Some(self.build_request(tenant, at_ps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan_in_profile(name: &'static str, fanout: usize, rate_hz: f64) -> RpcProfile {
        RpcProfile {
            name,
            shape: TreeShape::FanIn,
            fanout,
            leg_sizes: EmpiricalCdf::websearch(),
            response_sizes: Some(EmpiricalCdf::fixed("rsp", 1460)),
            arrivals: ArrivalProcess::Poisson { rate_hz },
            closed_loop_width: 0,
            slo_ps: 1_000_000_000,
            clients: None,
        }
    }

    fn mix() -> TenantMix {
        TenantMix::new(vec![
            fan_in_profile("websearch", 8, 50_000.0),
            fan_in_profile("datamining", 2, 10_000.0),
        ])
    }

    #[test]
    fn requests_are_time_ordered_well_formed_trees() {
        let wl = RpcWorkload::new(32, mix(), 1, 10_000_000_000);
        let reqs: Vec<RpcRequest> = wl.collect();
        assert!(
            reqs.len() > 200,
            "expected ~600 requests, got {}",
            reqs.len()
        );
        let mut prev = 0u64;
        for r in &reqs {
            assert!(r.start_ps >= prev && r.start_ps < 10_000_000_000);
            prev = r.start_ps;
            let fanout = if r.tenant == 0 { 8 } else { 2 };
            assert_eq!(r.legs.len(), fanout);
            let mut shards: Vec<u32> = r.legs.iter().map(|l| l.src).collect();
            shards.sort_unstable();
            shards.dedup();
            assert_eq!(shards.len(), fanout, "shards must be distinct");
            for l in &r.legs {
                assert!(l.src < 32 && l.src != r.client, "leg src invalid");
                assert_eq!(l.dst, r.client, "fan-in converges on the client");
                assert!(l.bytes >= 1);
            }
            let rsp = r.response.expect("profiles carry a response flow");
            assert_eq!(rsp.src, r.client);
            assert_ne!(rsp.dst, r.client);
        }
        // Both tenants produce requests, with per-tenant dense sequences.
        for t in 0..2u32 {
            let seqs: Vec<u64> = reqs
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| r.seq)
                .collect();
            assert!(!seqs.is_empty(), "tenant {t} silent");
            assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
        }
    }

    #[test]
    fn equal_seeds_are_bit_identical_and_seeds_differ() {
        let draw = |seed| -> Vec<RpcRequest> {
            RpcWorkload::new(32, mix(), seed, 5_000_000_000).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn tenant_streams_are_independent() {
        // Adding a tenant must not perturb an existing tenant's stream
        // (per-tenant SplitMix subseeding).
        let solo: Vec<RpcRequest> = RpcWorkload::new(
            32,
            TenantMix::new(vec![fan_in_profile("websearch", 8, 50_000.0)]),
            9,
            5_000_000_000,
        )
        .collect();
        let mixed: Vec<RpcRequest> = RpcWorkload::new(32, mix(), 9, 5_000_000_000)
            .filter(|r| r.tenant == 0)
            .collect();
        assert_eq!(solo.len(), mixed.len());
        assert!(solo
            .iter()
            .zip(&mixed)
            .all(|(a, b)| (a.start_ps, &a.legs) == (b.start_ps, &b.legs)));
    }

    #[test]
    fn closed_loop_tenants_self_clock() {
        let profile = RpcProfile {
            name: "pingpong",
            shape: TreeShape::PingPong,
            fanout: 1,
            leg_sizes: EmpiricalCdf::fixed("req", 64),
            response_sizes: Some(EmpiricalCdf::fixed("rsp", 4096)),
            arrivals: ArrivalProcess::ClosedLoop {
                median_gap_ps: 1_000_000_000,
            },
            closed_loop_width: 2,
            slo_ps: 1_000_000,
            clients: Some(vec![0]),
        };
        let mut wl = RpcWorkload::new(2, TenantMix::new(vec![profile]), 3, 60_000_000_000);
        assert!(wl.next().is_none(), "closed loop has no open-loop arrivals");
        let initial = wl.initial_closed_loop();
        assert_eq!(initial.len(), 2, "one request per chain");
        assert_eq!(initial[0].start_ps, 0, "chain 0 starts immediately");
        assert!(initial[1].start_ps > 0, "chain 1 staggered by think time");
        for r in &initial {
            assert_eq!(r.client, 0);
            assert_eq!(
                r.legs,
                vec![FlowLeg {
                    src: 0,
                    dst: 1,
                    bytes: 64
                }]
            );
            assert_eq!(
                r.response,
                Some(FlowLeg {
                    src: 1,
                    dst: 0,
                    bytes: 4096
                })
            );
        }
        // Completions chain follow-ups after a think gap; the horizon ends
        // the chain.
        let follow = wl.on_complete(0, 500_000).expect("chain continues");
        assert!(follow.start_ps > 500_000);
        assert!(
            wl.on_complete(0, 59_999_999_999).is_none() || {
                // A tiny think gap could still land inside the horizon; both
                // outcomes are legal here — what matters is no panic and
                // determinism, covered above.
                true
            }
        );
    }

    #[test]
    fn time_varying_tenant_swings_load() {
        let profile = RpcProfile {
            arrivals: ArrivalProcess::time_varying(vec![
                (2_000_000_000, 5_000.0),
                (2_000_000_000, 100_000.0),
            ]),
            ..fan_in_profile("diurnal", 4, 0.0)
        };
        let wl = RpcWorkload::new(16, TenantMix::new(vec![profile]), 5, 20_000_000_000);
        let reqs: Vec<RpcRequest> = wl.collect();
        let burst = reqs
            .iter()
            .filter(|r| r.start_ps % 4_000_000_000 >= 2_000_000_000)
            .count();
        let base = reqs.len() - burst;
        assert!(
            burst as f64 > 10.0 * base as f64,
            "burst {burst} vs base {base}"
        );
    }

    #[test]
    fn rate_for_client_load_accounts_for_fan_in() {
        let p = fan_in_profile("websearch", 8, 0.0);
        let rate = p.rate_for_client_load(0.4, 10_000_000_000, 32);
        // 0.4 × 32 × 10G / (8 × 8 × mean_websearch)
        let expect = 0.4 * 32.0 * 10e9 / (8.0 * 8.0 * EmpiricalCdf::websearch().mean_size());
        assert!((rate / expect - 1.0).abs() < 1e-9, "rate {rate}");
        assert!(p.mean_request_bytes() > 8.0 * EmpiricalCdf::websearch().mean_size());
    }
}
