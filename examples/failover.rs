//! Failure robustness (§3.2.3): a core link silently renegotiates from
//! 10 Gb/s to 1 Gb/s mid-run. The NDP sender's path scoreboard notices the
//! NACK outlier and routes around it within a few permutation rounds —
//! without any routing-protocol involvement.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use ndp::core::{attach_flow, NdpFlowCfg, NdpSender};
use ndp::net::{Host, Packet};
use ndp::sim::{Speed, Time, World};
use ndp::topology::{FatTree, FatTreeCfg};

fn main() {
    let mut world: World<Packet> = World::new(3);
    let ft = FatTree::build(&mut world, FatTreeCfg::new(4));

    // A long flow crossing pods (4 paths, one of which we will degrade).
    let size = 200_000_000u64; // 200 MB ~ 160 ms at line rate
    let cfg = NdpFlowCfg {
        n_paths: ft.n_paths(0, 15),
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut world,
        1,
        (ft.hosts[0], 0),
        (ft.hosts[15], 15),
        cfg,
        Time::ZERO,
    );

    // Run 10 ms healthy.
    world.run_until(Time::from_ms(10));
    let healthy = ndp::core::flow::receiver_stats(&world, ft.hosts[15], 1).payload_bytes;
    println!(
        "after 10 ms healthy: {:.2} Gb/s",
        healthy as f64 * 8.0 / 0.010 / 1e9
    );

    // Degrade path 0's core link to 1 Gb/s.
    ft.degrade_core_link(&mut world, 0, 0, 0, Speed::gbps(1));
    println!("degraded core link (pod 0, agg 0, uplink 0) to 1 Gb/s");

    // Run another 30 ms; the scoreboard should exclude the sick path.
    world.run_until(Time::from_ms(40));
    let after = ndp::core::flow::receiver_stats(&world, ft.hosts[15], 1).payload_bytes;
    let gbps = (after - healthy) as f64 * 8.0 / 0.030 / 1e9;
    println!("next 30 ms with failure: {gbps:.2} Gb/s");

    let sender = world.get::<Host>(ft.hosts[0]).endpoint::<NdpSender>(1);
    println!(
        "sender saw {} NACKs, {} retransmissions ({} via RTO)",
        sender.stats.nacks, sender.stats.retransmissions, sender.stats.rtx_rto
    );
    // With 4 paths and one at 1/10th speed, naive spraying would cap at
    // ~77% of line rate; path exclusion should do much better.
    if gbps > 8.5 {
        println!("path penalty successfully routed around the failure");
    } else {
        println!("WARNING: throughput lower than expected — inspect the scoreboard");
    }
}
