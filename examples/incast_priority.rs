//! The paper's motivating scenario (§2.1): a frontend fans a request out
//! to many workers and needs the *straggler* — the late response from the
//! previous request — prioritized over the new wave.
//!
//! We run a 32:1 incast of 450 KB responses to one frontend, with one
//! worker marked high priority. The receiver pulls the priority flow
//! first, so it finishes in near-idle time while the rest fair-share.
//!
//! ```sh
//! cargo run --release --example incast_priority
//! ```

use ndp::core::{attach_flow, NdpFlowCfg};
use ndp::metrics::Table;
use ndp::net::Packet;
use ndp::sim::{Time, World};
use ndp::topology::{FatTree, FatTreeCfg};
use rand::SeedableRng;

fn main() {
    let mut world: World<Packet> = World::new(7);
    let ft = FatTree::build(&mut world, FatTreeCfg::new(8)); // 128 hosts
    let frontend = 0u32;
    let n = 32;
    let size = 450_000u64;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let workers = ndp::workloads::incast(frontend as usize, n, ft.n_hosts(), &mut rng);

    for (i, &w) in workers.iter().enumerate() {
        let mut cfg = NdpFlowCfg::new(size);
        cfg.n_paths = ft.n_paths(w as u32, frontend);
        cfg.high_priority = i == 0; // the straggler gets priority pulls
        attach_flow(
            &mut world,
            i as u64 + 1,
            (ft.hosts[w], w as u32),
            (ft.hosts[frontend as usize], frontend),
            cfg,
            Time::ZERO,
        );
    }
    world.run_until(Time::from_secs(5));

    let mut t = Table::new(["flow", "priority", "FCT (ms)"]);
    let mut last = Time::ZERO;
    let mut prio_fct = Time::ZERO;
    for i in 0..workers.len() {
        let rx = ndp::core::flow::receiver_stats(&world, ft.hosts[frontend as usize], i as u64 + 1);
        let fct = rx.completion_time.expect("all incast flows complete");
        last = last.max(fct);
        if i == 0 {
            prio_fct = fct;
        }
        if i < 5 {
            t.row([
                format!("worker {i}"),
                if i == 0 { "HIGH" } else { "normal" }.to_string(),
                format!("{:.2}", fct.as_ms()),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "prioritized straggler finished at {:.2} ms",
        prio_fct.as_ms()
    );
    println!("last incast flow finished at    {:.2} ms", last.as_ms());
    println!(
        "ideal (all {} responses at 10 Gb/s): {:.2} ms",
        n,
        (n as u64 * size) as f64 * 8.0 / 10e9 * 1e3
    );
}
