//! Long-window open-loop run: the O(concurrent) memory claim, end to end.
//!
//! Runs the quick-scale web-search load point at high load with a **10×**
//! measure window (200 ms simulated vs the sweep's 20 ms) and asserts the
//! flow-lifecycle invariants that make such windows affordable:
//!
//! * peak in-flight flows stay far below total arrivals (lazy attach +
//!   retirement — live state does not scale with the window length);
//! * after the drain, the component arena is back at its pre-traffic
//!   population (every endpoint was freed);
//! * drain ends when the live-flow gauge hits zero, not at a fixed horizon.
//!
//! ```sh
//! cargo run --release --example long_window
//! ```
//!
//! CI runs this and fails on any violated invariant (exit code != 0).

use ndp::experiments::openloop::{openloop_run, DistKind};
use ndp::experiments::sweep::OpenLoopPoint;
use ndp::experiments::topo::TopoSpec;
use ndp::experiments::Proto;
use ndp::sim::Time;
use ndp::topology::FatTreeCfg;

fn main() {
    let point = OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::fattree(FatTreeCfg::new(4)),
        dist: DistKind::WebSearch,
        load: 0.5,
        seed: 7,
        warmup: Time::from_ms(2),
        // 10x the quick-scale sweep's measure window.
        measure: Time::from_ms(200),
        drain: Time::from_ms(20),
    };
    let started = std::time::Instant::now();
    let r = openloop_run(point);
    let wall = started.elapsed().as_secs_f64();

    println!("long-window open-loop NDP @50% load, websearch sizes, 222 ms simulated");
    println!("  offered flows        : {}", r.offered);
    println!("  measured / incomplete: {} / {}", r.measured, r.incomplete);
    println!(
        "  delivered payload    : {:.1} MB",
        r.delivered_bytes as f64 / 1e6
    );
    println!("  events processed     : {}", r.events_processed);
    println!("  peak live flows      : {}", r.peak_live_flows);
    println!(
        "  live components      : baseline {} -> peak {} -> end {}",
        r.live_components_baseline, r.peak_live_components, r.live_components_end
    );
    println!("  wall clock           : {wall:.2}s");
    let p99 = r.slowdown.overall().percentile(0.99);
    println!("  overall p99 slowdown : {p99:.1}");

    // The point of the refactor: a 10x window costs the same live state.
    assert!(r.offered > 200, "expected a long arrival stream");
    assert!(
        r.peak_live_flows * 4 < r.offered,
        "peak live flows {} must be << total arrivals {}",
        r.peak_live_flows,
        r.offered
    );
    assert_eq!(
        r.live_components_end, r.live_components_baseline,
        "arena must return to the pre-traffic baseline after the drain"
    );
    assert_eq!(
        r.peak_live_components,
        r.live_components_baseline + 1,
        "traffic must not grow the arena (only the spawner is added)"
    );
    assert!(
        r.slowdown.len() + r.incomplete == r.measured,
        "every measured flow is either binned or incomplete"
    );
    println!("ok: live state is O(concurrent flows), arena drained to baseline");
}
