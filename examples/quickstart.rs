//! Quickstart: build a FatTree, run one NDP flow across it, print stats.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ndp::core::{attach_flow, NdpFlowCfg};
use ndp::net::Packet;
use ndp::sim::{Time, World};
use ndp::topology::{FatTree, FatTreeCfg};

fn main() {
    // A 16-host FatTree (k=4) with the paper's defaults: 10 Gb/s links,
    // 9 KB jumbograms, NDP switches with 8-packet data queues.
    let mut world: World<Packet> = World::new(1);
    let ft = FatTree::build(&mut world, FatTreeCfg::new(4));
    println!(
        "built a k=4 FatTree: {} hosts, {} components",
        ft.n_hosts(),
        world.len()
    );

    // Transfer 10 MB from host 0 to host 15 (different pods: 4 paths).
    let size = 10_000_000u64;
    let cfg = NdpFlowCfg {
        n_paths: ft.n_paths(0, 15),
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut world,
        1,
        (ft.hosts[0], 0),
        (ft.hosts[15], 15),
        cfg,
        Time::ZERO,
    );
    world.run_until(Time::from_secs(1));

    let tx = ndp::core::flow::sender_stats(&world, ft.hosts[0], 1);
    let rx = ndp::core::flow::receiver_stats(&world, ft.hosts[15], 1);
    let fct = tx.fct().expect("flow should complete");
    println!("transferred {} bytes in {}", rx.payload_bytes, fct);
    println!(
        "goodput: {:.2} Gb/s",
        size as f64 * 8.0 / fct.as_secs() / 1e9
    );
    println!(
        "data packets sent: {} (retransmissions: {}), headers NACKed: {}",
        tx.data_sent, tx.retransmissions, tx.nacks
    );
    println!("events processed: {}", world.events_processed());
}
