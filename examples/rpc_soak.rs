//! RPC soak: the serving subsystem's O(concurrent) claim over a
//! multi-second mixed-tenant campaign.
//!
//! Runs a 2-second simulated mix — a fan-out-8 web-search RPC tenant at
//! steady load plus a bursty background tenant whose diurnal arrival
//! schedule swings between 10 % and 50 % load every 2 ms — on the quick
//! fat-tree, then asserts the invariants that make multi-second request
//! campaigns affordable:
//!
//! * peak in-flight flows stay far below total legs offered (request
//!   trees attach lazily at their arrival instant and every leg detaches
//!   on completion — live state tracks concurrency, not history);
//! * peak in-flight *requests* likewise stay far below requests offered;
//! * the component arena returns to its pre-traffic baseline after the
//!   drain (every endpoint was freed);
//! * no request is left incomplete: the NDP legs run with the lost-PULL
//!   liveness net armed, so a dropped tail pull cannot wedge a tree.
//!
//! ```sh
//! cargo run --release --example rpc_soak
//! ```
//!
//! CI runs this and fails on any violated invariant (exit code != 0).

use ndp::experiments::rpc::{rpc_leg_sizes, rpc_world_run, ArrivalSpec, RpcPoint, TenantSpec};
use ndp::experiments::topo::TopoSpec;
use ndp::experiments::Proto;
use ndp::sim::Time;
use ndp::topology::FatTreeCfg;
use ndp::workloads::{EmpiricalCdf, TreeShape};

fn main() {
    let point = RpcPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::fattree(FatTreeCfg::new(4)),
        tenants: vec![
            TenantSpec {
                name: "websearch_rpc",
                shape: TreeShape::FanIn,
                fanout: 8,
                leg_sizes: rpc_leg_sizes(),
                response_sizes: Some(EmpiricalCdf::fixed("rpc-response", 1_460)),
                arrivals: ArrivalSpec::Load(0.30),
                slo: Time::from_us(500),
            },
            TenantSpec {
                name: "background_blast",
                shape: TreeShape::FanIn,
                fanout: 4,
                leg_sizes: EmpiricalCdf::fixed("blast-chunk", 8_192),
                arrivals: ArrivalSpec::DiurnalLoad {
                    base: 0.10,
                    peak: 0.50,
                    period: Time::from_ms(2),
                    burst_frac: 0.3,
                },
                response_sizes: None,
                slo: Time::from_us(300),
            },
        ],
        seed: 7,
        warmup: Time::from_ms(2),
        measure: Time::from_secs(2),
        drain: Time::from_ms(40),
        sched: None,
        key: "soak".into(),
    };
    let started = std::time::Instant::now();
    let r = rpc_world_run(&point);
    let wall = started.elapsed().as_secs_f64();

    let completed: u64 = r.tenants.iter().map(|t| t.completed).sum();
    let incomplete: u64 = r.tenants.iter().map(|t| t.incomplete).sum();
    println!("rpc soak: 2-tenant mix, 2.042 s simulated, NDP on k=4 fat-tree");
    println!("  requests offered     : {}", r.offered);
    println!("  measured / incomplete: {} / {incomplete}", r.measured);
    println!("  events processed     : {}", r.events_processed);
    println!("  peak live requests   : {}", r.peak_live_requests);
    println!("  peak live flows      : {}", r.peak_live_flows);
    println!(
        "  live components      : baseline {} -> peak {} -> end {}",
        r.live_components_baseline, r.peak_live_components, r.live_components_end
    );
    println!("  wall clock           : {wall:.2}s");
    for t in &r.tenants {
        println!(
            "  {:<16} p99 {:>8} us, SLO {:>6}",
            t.name,
            t.p99_us.map_or("-".into(), |v| format!("{v:.0}")),
            t.slo_attainment
                .map_or("-".into(), |v| format!("{:.1}%", 100.0 * v)),
        );
    }

    assert!(r.offered > 10_000, "soak must offer a long request stream");
    assert!(
        r.peak_live_requests * 20 < r.offered,
        "peak live requests {} must be << requests offered {}",
        r.peak_live_requests,
        r.offered
    );
    // Legs offered >= fanout * completed requests for the fan-out-8
    // tenant alone; live flows must never approach that.
    assert!(
        (r.peak_live_flows as u64) * 20 < completed * 4,
        "peak live flows {} must be << legs offered (~{})",
        r.peak_live_flows,
        completed * 6
    );
    assert_eq!(
        incomplete, 0,
        "liveness net + drain must complete every request"
    );
    assert_eq!(
        r.live_components_end, r.live_components_baseline,
        "arena must return to the pre-traffic baseline after the drain"
    );
    assert_eq!(
        r.peak_live_components,
        r.live_components_baseline + 1,
        "traffic must not grow the arena (only the driver is added)"
    );
    println!("ok: live state is O(concurrent requests), arena drained to baseline");
}
