//! Compare all four switch service models under the same 40:1 overload
//! (the design-space tour of §2.3): drop-tail loses data silently, ECN
//! marks, CP trims into a FIFO, NDP trims into a priority queue; lossless
//! PFC pauses upstream.
//!
//! ```sh
//! cargo run --release --example switch_comparison
//! ```

use ndp::baselines::blast::{attach_blast, CountSink};
use ndp::metrics::Table;
use ndp::net::{Host, Packet, Queue};
use ndp::sim::{Speed, Time, World};
use ndp::topology::{QueueSpec, SingleBottleneck};

fn run(fabric: QueueSpec, label: &str, t: &mut Table) {
    let n = 40;
    let span = Time::from_ms(5);
    let mut world: World<Packet> = World::new(11);
    let sb = SingleBottleneck::build(
        &mut world,
        n,
        Speed::gbps(10),
        Time::from_us(1),
        9000,
        fabric,
    );
    for s in 0..n {
        attach_blast(
            &mut world,
            s as u64 + 1,
            (sb.senders[s], s as u32),
            (sb.receiver, n as u32),
            9000,
            Speed::gbps(10),
            Time::from_ns(s as u64 * 180),
        );
    }
    world.run_until(span);
    let q = world.get::<Queue>(sb.bottleneck);
    let delivered: u64 = {
        let h = world.get::<Host>(sb.receiver);
        (1..=n as u64)
            .map(|f| h.endpoint::<CountSink>(f).payload_bytes)
            .sum()
    };
    let goodput = delivered as f64 * 8.0 / span.as_secs() / 1e9;
    t.row([
        label.to_string(),
        format!("{goodput:.2}"),
        q.stats.trimmed.to_string(),
        q.stats.dropped_data.to_string(),
        q.stats.ecn_marked.to_string(),
        q.stats.xoff_sent.to_string(),
    ]);
}

fn main() {
    let mut t = Table::new([
        "switch",
        "goodput Gb/s",
        "trimmed",
        "dropped",
        "marked",
        "pauses",
    ]);
    run(QueueSpec::ndp_default(), "NDP (trim+prio+WRR)", &mut t);
    run(QueueSpec::Cp { thresh_pkts: 8 }, "CP (trim, FIFO)", &mut t);
    run(
        QueueSpec::DropTail {
            cap_pkts: 8,
            ecn_thresh_pkts: None,
        },
        "drop-tail (8 pkts)",
        &mut t,
    );
    run(
        QueueSpec::dctcp_default(),
        "drop-tail+ECN (200 pkts)",
        &mut t,
    );
    run(QueueSpec::dcqcn_default(), "lossless PFC+ECN", &mut t);
    println!("{}", t.render());
    println!("note: unresponsive senders — transports are compared in the fig* binaries");
}
