//! # NDP — a Rust reproduction of "Re-architecting datacenter networks and
//! # stacks for low latency and high performance" (SIGCOMM 2017)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation engine
//! * [`net`] — packets, queues (including the NDP trimming switch), pipes, hosts
//! * [`topology`] — FatTree/Clos builders, path math, failure injection
//! * [`transport`] — the pluggable `Transport` trait every protocol implements
//! * [`core`] — the NDP receiver-driven transport protocol itself
//! * [`baselines`] — TCP NewReno, DCTCP, MPTCP, DCQCN(+PFC), CP, pHost
//! * [`workloads`] — permutation/random/incast/web traffic generators
//! * [`metrics`] — FCT/CDF/utilization collectors and figure rendering
//! * [`telemetry`] — sampling probes, flow spans, flight recording, trace export
//! * [`experiments`] — one runnable harness per paper figure/table
//!
//! ## Quickstart
//!
//! ```
//! use ndp::experiments::quick::two_host_transfer;
//! let report = two_host_transfer(1_000_000); // 1 MB over 10 Gb/s
//! assert!(report.goodput_gbps > 9.0);
//! ```
pub use ndp_baselines as baselines;
pub use ndp_core as core;
pub use ndp_experiments as experiments;
pub use ndp_metrics as metrics;
pub use ndp_net as net;
pub use ndp_sim as sim;
pub use ndp_telemetry as telemetry;
pub use ndp_topology as topology;
pub use ndp_transport as transport;
pub use ndp_workloads as workloads;
