//! Golden-trace determinism tests.
//!
//! These pin the scheduler refactor to an exact event ordering: a small
//! mixed NDP+TCP FatTree run is traced as a hash over every dispatched
//! `(time, component, kind)` triple, and that hash must be identical
//! (a) across repeated runs, (b) across the two-tier and classic
//! schedulers, and (c) equal to the committed constant below.
//!
//! If a change breaks (c) *intentionally* — a new RNG draw on a hot path,
//! a protocol fix that reorders packets — rerun with
//! `NDP_PRINT_TRACE_HASH=1 cargo test --release golden` and commit the
//! freshly printed value together with an explanation. Breaking (a) or (b)
//! is never intentional: it means the engine lost determinism or the
//! schedulers diverged.

use ndp::baselines::tcp::{attach_tcp_flow, TcpCfg};
use ndp::core::{attach_flow, NdpFlowCfg};
use ndp::net::Packet;
use ndp::sim::world::SchedulerKind;
use ndp::sim::{Time, World};
use ndp::topology::{FatTree, FatTreeCfg};

/// The pinned trace of `mixed_world` (hash, dispatched-event count).
/// Computed on the seed's event ordering contract: ascending
/// `(time, posting-seq)` over every dispatched event, with explicit
/// `Pipe` components on every link (the seed's unfused wiring).
const GOLDEN: (u64, u64) = (0x2659_0E36_D8C8_83F0, 9_014);

/// The pinned trace of the same scenario on fused hops (the default
/// wiring since the hot-path overhaul): wire propagation folds into each
/// queue's TX-done post, so the trace legitimately contains no `Pipe`
/// dispatches and fewer events. Pinned separately so fused-mode
/// determinism regressions are caught just as early.
const GOLDEN_FUSED: (u64, u64) = (0xA11C_6039_EE14_D5C6, 6_788);

fn mixed_world(kind: SchedulerKind) -> (u64, u64) {
    mixed_world_wired(kind, false)
}

fn mixed_world_wired(kind: SchedulerKind, fused: bool) -> (u64, u64) {
    let mut w: World<Packet> = World::with_scheduler(11, kind);
    w.enable_trace();
    let cfg = if fused {
        FatTreeCfg::new(4)
    } else {
        FatTreeCfg::new(4).unfused()
    };
    let ft = FatTree::build(&mut w, cfg);
    // Three NDP flows (multipath, trimming fabric is NDP-default).
    for (i, &(src, dst)) in [(0u32, 9u32), (3, 12), (7, 2)].iter().enumerate() {
        let cfg = NdpFlowCfg {
            n_paths: ft.n_paths(src, dst),
            ..NdpFlowCfg::new(300_000)
        };
        attach_flow(
            &mut w,
            i as u64 + 1,
            (ft.hosts[src as usize], src),
            (ft.hosts[dst as usize], dst),
            cfg,
            Time::from_us(i as u64),
        );
    }
    // Two TCP flows sharing the same fabric (cross-protocol event mix).
    for (i, &(src, dst)) in [(5u32, 10u32), (14, 1)].iter().enumerate() {
        let cfg = TcpCfg::new(150_000);
        attach_tcp_flow(
            &mut w,
            i as u64 + 100,
            (ft.hosts[src as usize], src),
            (ft.hosts[dst as usize], dst),
            cfg,
            Time::from_us(2 + i as u64),
        );
    }
    w.run_until(Time::from_ms(20));
    w.trace_hash()
}

#[test]
fn golden_trace_is_reproducible_across_runs() {
    assert_eq!(
        mixed_world(SchedulerKind::TwoTier),
        mixed_world(SchedulerKind::TwoTier),
        "two consecutive runs must produce identical event traces"
    );
}

#[test]
fn golden_trace_identical_across_schedulers() {
    let two_tier = mixed_world(SchedulerKind::TwoTier);
    let classic = mixed_world(SchedulerKind::Classic);
    assert_eq!(
        two_tier, classic,
        "two-tier scheduler must reproduce the classic heap's exact event ordering"
    );
}

#[test]
fn golden_trace_matches_committed_hash() {
    let got = mixed_world(SchedulerKind::TwoTier);
    if std::env::var("NDP_PRINT_TRACE_HASH").is_ok() {
        println!("golden trace: (0x{:016X}, {})", got.0, got.1);
    }
    assert_eq!(
        got, GOLDEN,
        "event trace diverged from the committed golden hash; \
         if intentional, rerun with NDP_PRINT_TRACE_HASH=1 and update GOLDEN"
    );
}

#[test]
fn golden_trace_fused_matches_committed_hash_on_both_schedulers() {
    let two_tier = mixed_world_wired(SchedulerKind::TwoTier, true);
    let classic = mixed_world_wired(SchedulerKind::Classic, true);
    assert_eq!(
        two_tier, classic,
        "fused wiring must also be scheduler-independent"
    );
    if std::env::var("NDP_PRINT_TRACE_HASH").is_ok() {
        println!(
            "golden fused trace: (0x{:016X}, {})",
            two_tier.0, two_tier.1
        );
    }
    assert_eq!(
        two_tier, GOLDEN_FUSED,
        "fused event trace diverged from the committed golden hash; \
         if intentional, rerun with NDP_PRINT_TRACE_HASH=1 and update GOLDEN_FUSED"
    );
    assert!(
        two_tier.1 < GOLDEN.1,
        "hop fusion must dispatch strictly fewer events than the piped wiring"
    );
}
