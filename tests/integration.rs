//! Cross-crate integration tests: end-to-end behaviours the paper claims,
//! exercised through the public API of the facade crate.

use ndp::baselines::tcp::{attach_tcp_flow, TcpCfg};
use ndp::core::{attach_flow, NdpFlowCfg, NdpSender};
use ndp::net::{Host, Packet, Queue};
use ndp::sim::{Speed, Time, World};
use ndp::topology::{
    FatTree, FatTreeCfg, QueueSpec, SingleBottleneck, Topology, TwoTier, TwoTierCfg,
};

/// §3.1 / Figure 3: priority-forwarded headers let a retransmission arrive
/// before the congested queue drains, so the bottleneck link never idles
/// once the incast starts.
#[test]
fn fig3_retransmission_beats_queue_drain() {
    let mut w: World<Packet> = World::new(5);
    // Ten senders against an eight-packet queue (plus one packet on the
    // wire): at least one packet must be trimmed.
    let n = 10;
    let sb = SingleBottleneck::build(
        &mut w,
        n,
        Speed::gbps(10),
        Time::from_us(1),
        9000,
        QueueSpec::ndp_default(),
    );
    for s in 0..n {
        let cfg = NdpFlowCfg {
            n_paths: 1,
            iw_pkts: 1,
            ..NdpFlowCfg::new(8936)
        };
        attach_flow(
            &mut w,
            s as u64 + 1,
            (sb.senders[s], s as u32),
            (sb.receiver, n as u32),
            cfg,
            Time::ZERO,
        );
    }
    w.run_until(Time::from_ms(10));
    // All packets delivered.
    let host = w.get::<Host>(sb.receiver);
    assert_eq!(host.stats().delivered_payload_bytes, n as u64 * 8936);
    // At least one packet was trimmed, and its retransmission arrived
    // before the queue drained — if the link had gone idle waiting for an
    // RTO this would take >1 ms.
    let q = w.get::<Queue>(sb.bottleneck);
    assert!(q.stats.trimmed >= 1, "overflow packet should be trimmed");
    let last_done = (1..=n as u64)
        .map(|f| {
            ndp::core::flow::receiver_stats(&w, sb.receiver, f)
                .completion_time
                .unwrap()
        })
        .max()
        .unwrap();
    assert!(
        last_done < Time::from_ms(1),
        "retransmission must not wait for a timeout (took {last_done})"
    );
}

/// Determinism: identical seeds give bit-identical outcomes across the
/// whole stack (engine, switches, transports).
#[test]
fn same_seed_same_world() {
    fn run(seed: u64) -> (u64, u64, Time) {
        let mut w: World<Packet> = World::new(seed);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        for (i, dst) in [5u32, 9, 13].iter().enumerate() {
            let cfg = NdpFlowCfg {
                n_paths: ft.n_paths(0, *dst),
                ..NdpFlowCfg::new(400_000)
            };
            attach_flow(
                &mut w,
                i as u64 + 1,
                (ft.hosts[0], 0),
                (ft.hosts[*dst as usize], *dst),
                cfg,
                Time::from_us(i as u64),
            );
        }
        w.run_until(Time::from_ms(20));
        let done: Time = (1..=3u64)
            .map(|f| {
                ndp::core::flow::receiver_stats(&w, ft.hosts[[5usize, 9, 13][(f - 1) as usize]], f)
                    .completion_time
                    .unwrap()
            })
            .max()
            .unwrap();
        (w.events_processed(), w.len() as u64, done)
    }
    // Bit-identical outcomes for identical seeds. (Different seeds may
    // still tie on completion time — an idle network is serialization
    // bound — so no inequality is asserted.)
    assert_eq!(run(42), run(42));
    assert_eq!(run(43), run(43));
}

/// Conservation: every payload byte pushed by NDP senders is delivered
/// exactly once to the application, regardless of trimming and
/// retransmissions (30:1 incast over a FatTree).
#[test]
fn payload_conservation_under_incast() {
    let mut w: World<Packet> = World::new(9);
    let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
    let n = 12;
    let size = 123_456u64;
    for s in 0..n {
        let src = (s + 1) as u32;
        let cfg = NdpFlowCfg {
            n_paths: ft.n_paths(src, 0),
            ..NdpFlowCfg::new(size)
        };
        attach_flow(
            &mut w,
            s as u64 + 1,
            (ft.hosts[src as usize], src),
            (ft.hosts[0], 0),
            cfg,
            Time::ZERO,
        );
    }
    w.run_until(Time::from_secs(2));
    for s in 0..n {
        let rx = ndp::core::flow::receiver_stats(&w, ft.hosts[0], s as u64 + 1);
        assert_eq!(rx.payload_bytes, size, "flow {s} byte count");
        assert!(rx.completion_time.is_some());
    }
    assert_eq!(
        w.get::<Host>(ft.hosts[0]).stats().delivered_payload_bytes,
        n as u64 * size
    );
}

/// NDP and TCP coexistence sanity: both complete on their own fabrics and
/// NDP's short-flow latency advantage holds through the public API.
#[test]
fn ndp_beats_tcp_on_short_transfers_across_a_tree() {
    let size = 90_000u64;
    // NDP on NDP switches.
    let mut w1: World<Packet> = World::new(1);
    let ft1 = FatTree::build(&mut w1, FatTreeCfg::new(4));
    let cfg = NdpFlowCfg {
        n_paths: ft1.n_paths(0, 15),
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut w1,
        1,
        (ft1.hosts[0], 0),
        (ft1.hosts[15], 15),
        cfg,
        Time::ZERO,
    );
    w1.run_until(Time::from_secs(1));
    let ndp_fct = ndp::core::flow::receiver_stats(&w1, ft1.hosts[15], 1)
        .completion_time
        .expect("ndp completes");
    // TCP on 200-packet drop-tail switches.
    let mut w2: World<Packet> = World::new(1);
    let ft2 = FatTree::build(
        &mut w2,
        FatTreeCfg::new(4).with_fabric(QueueSpec::droptail_default()),
    );
    // TCP pays its connection handshake; NDP's zero-RTT start is exactly
    // the architectural difference under test here.
    let tcp_cfg = TcpCfg {
        handshake: ndp::baselines::tcp::Handshake::ThreeWay,
        ..TcpCfg::new(size)
    };
    attach_tcp_flow(
        &mut w2,
        1,
        (ft2.hosts[0], 0),
        (ft2.hosts[15], 15),
        tcp_cfg,
        Time::ZERO,
    );
    w2.run_until(Time::from_secs(1));
    let h = w2.get::<Host>(ft2.hosts[15]);
    let tcp_fct = h
        .endpoint::<ndp::baselines::tcp::TcpReceiver>(1)
        .completion_time
        .expect("tcp completes");
    assert!(
        ndp_fct < tcp_fct,
        "NDP {} should beat TCP {} on a 90KB transfer (zero-RTT + full-rate start)",
        ndp_fct,
        tcp_fct
    );
}

/// Metadata losslessness: across a heavily overloaded NDP fabric, data may
/// be trimmed but is never silently dropped while the header queues have
/// room; with return-to-sender enabled nothing is lost at all.
#[test]
fn metadata_is_lossless_with_rts() {
    let mut w: World<Packet> = World::new(3);
    let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
    // 15:1 incast with big IW to force trimming and header-queue pressure.
    for s in 1..16u32 {
        let cfg = NdpFlowCfg {
            n_paths: ft.n_paths(s, 0),
            iw_pkts: 30,
            ..NdpFlowCfg::new(30 * 8936)
        };
        attach_flow(
            &mut w,
            s as u64,
            (ft.hosts[s as usize], s),
            (ft.hosts[0], 0),
            cfg,
            Time::ZERO,
        );
    }
    w.run_until(Time::from_secs(2));
    let stats = ft.stats_by_class(&w);
    let mut trims = 0;
    let mut data_drops = 0;
    for (_, s) in &stats {
        trims += s.trimmed;
        data_drops += s.dropped_data;
    }
    assert!(trims > 0, "incast must trim");
    assert_eq!(data_drops, 0, "nothing silently dropped");
    for s in 1..16u64 {
        assert!(
            ndp::core::flow::receiver_stats(&w, ft.hosts[0], s)
                .completion_time
                .is_some(),
            "flow {s} incomplete"
        );
    }
}

/// Two-tier testbed sanity through the facade: the full request fan-out
/// completes near the ideal serialization bound.
#[test]
fn testbed_incast_is_near_ideal() {
    let mut w: World<Packet> = World::new(4);
    let tt = TwoTier::build(&mut w, TwoTierCfg::testbed());
    let size = 450_000u64;
    for s in 1..8usize {
        let cfg = NdpFlowCfg {
            n_paths: tt.n_paths(s as u32, 0),
            ..NdpFlowCfg::new(size)
        };
        attach_flow(
            &mut w,
            s as u64,
            (tt.hosts[s], s as u32),
            (tt.hosts[0], 0),
            cfg,
            Time::ZERO,
        );
    }
    w.run_until(Time::from_secs(2));
    let mut last = Time::ZERO;
    for s in 1..8u64 {
        last = last.max(
            ndp::core::flow::receiver_stats(&w, tt.hosts[0], s)
                .completion_time
                .unwrap(),
        );
    }
    let ideal = Speed::gbps(10).tx_time(7 * (size + size / 100));
    assert!(
        last < ideal + Time::from_ms(1),
        "last {last} vs ideal {ideal}"
    );
}

/// The sender's path scoreboard is reachable through the facade and
/// actually excludes a degraded path (end-to-end version of Fig 22).
#[test]
fn path_penalty_end_to_end() {
    let mut w: World<Packet> = World::new(6);
    let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
    ft.degrade_core_link(&mut w, 0, 0, 0, Speed::gbps(1));
    let size = 40_000_000u64;
    let cfg = NdpFlowCfg {
        n_paths: ft.n_paths(0, 15),
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut w,
        1,
        (ft.hosts[0], 0),
        (ft.hosts[15], 15),
        cfg,
        Time::ZERO,
    );
    w.run_until(Time::from_secs(2));
    let tx = w.get::<Host>(ft.hosts[0]).endpoint::<NdpSender>(1);
    let fct = tx.stats.fct().expect("completes");
    let gbps = size as f64 * 8.0 / fct.as_secs() / 1e9;
    // Naive 4-way spraying with one path at 1/10 speed converges to ~7.5
    // Gb/s; the scoreboard should do clearly better.
    assert!(gbps > 8.5, "goodput with degraded path {gbps:.2}");
}
