//! Property-based tests over the core data structures and protocol
//! invariants.

use ndp::core::{attach_flow, NdpFlowCfg, PathSet};
use ndp::metrics::Cdf;
use ndp::net::host::HostLatency;
use ndp::net::{Packet, Queue};
use ndp::sim::{Speed, Time, World};
use ndp::topology::{BackToBack, QueueSpec, SingleBottleneck};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any flow size over a clean link is delivered exactly once,
    /// regardless of the initial window.
    #[test]
    fn ndp_delivers_exact_bytes(size in 1u64..2_000_000, iw in 1u64..64, seed in 0u64..1000) {
        let mut w: World<Packet> = World::new(seed);
        let b2b = BackToBack::build(
            &mut w,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
            HostLatency::default(),
        );
        let cfg = NdpFlowCfg { n_paths: 1, iw_pkts: iw, ..NdpFlowCfg::new(size) };
        attach_flow(&mut w, 1, (b2b.hosts[0], 0), (b2b.hosts[1], 1), cfg, Time::ZERO);
        w.run_until(Time::from_secs(10));
        let rx = ndp::core::flow::receiver_stats(&w, b2b.hosts[1], 1);
        prop_assert_eq!(rx.payload_bytes, size);
        prop_assert!(rx.completion_time.is_some());
        let tx = ndp::core::flow::sender_stats(&w, b2b.hosts[0], 1);
        prop_assert_eq!(tx.retransmissions, 0, "no retransmissions on a clean link");
    }

    /// Even with corruption on both directions, every byte eventually
    /// arrives exactly once (RTO reliability net).
    #[test]
    fn ndp_survives_corruption(size in 1u64..300_000, p in 0.0f64..0.15, seed in 0u64..200) {
        let mut w: World<Packet> = World::new(seed);
        use ndp::net::{Host, Pipe};
        use ndp::net::queue::LinkClass;
        let h0 = w.reserve();
        let h1 = w.reserve();
        let speed = Speed::gbps(10);
        let p01 = w.add(Pipe::new(Time::from_us(1), h1).with_corruption(p));
        let nic0 = w.add(Queue::new(speed, p01, LinkClass::HostNic, QueueSpec::ndp_default().build_host_nic(9000)));
        let p10 = w.add(Pipe::new(Time::from_us(1), h0).with_corruption(p));
        let nic1 = w.add(Queue::new(speed, p10, LinkClass::HostNic, QueueSpec::ndp_default().build_host_nic(9000)));
        w.install(h0, Host::new(0, nic0, speed, 9000));
        w.install(h1, Host::new(1, nic1, speed, 9000));
        let cfg = NdpFlowCfg { n_paths: 1, ..NdpFlowCfg::new(size) };
        attach_flow(&mut w, 1, (h0, 0), (h1, 1), cfg, Time::ZERO);
        w.run_until(Time::from_secs(60));
        let rx = ndp::core::flow::receiver_stats(&w, h1, 1);
        prop_assert_eq!(rx.payload_bytes, size, "all payload delivered despite corruption");
    }

    /// The path permutation visits every path exactly once per round, for
    /// any path count.
    #[test]
    fn pathset_round_coverage(n in 1u32..64, seed in 0u64..1000) {
        let mut ps = PathSet::new(n, false);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _round in 0..4 {
            let mut seen = vec![0u32; n as usize];
            for _ in 0..n {
                seen[ps.next(&mut rng) as usize] += 1;
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "round must be a permutation: {:?}", seen);
        }
    }

    /// CDF percentile queries are monotone and bounded by min/max.
    #[test]
    fn cdf_percentiles_monotone(mut xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let c = Cdf::from_samples(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let v = c.percentile(p);
            prop_assert!(v >= prev);
            prop_assert!(v >= c.min() && v <= c.max());
            prev = v;
        }
        prop_assert_eq!(c.percentile(1.0), *xs.last().unwrap());
    }

    /// NDP queue invariants under arbitrary overload: metadata lossless
    /// until header-queue capacity, occupancy bounded, WRR bounded.
    #[test]
    fn ndp_queue_never_exceeds_capacity(n_pkts in 1usize..600, seed in 0u64..500) {
        let mut w: World<Packet> = World::new(seed);
        struct Sink;
        impl ndp::sim::Component<Packet> for Sink {
            fn handle(&mut self, _ev: ndp::sim::Event<Packet>, _ctx: &mut ndp::sim::Ctx<'_, Packet>) {}
            fn as_any(&self) -> &dyn std::any::Any { self }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
        }
        let sink = w.add(Sink);
        let q = w.add(Queue::new(
            Speed::gbps(10),
            sink,
            ndp::net::LinkClass::TorDown,
            ndp::net::Policy::ndp(8, 9000),
        ));
        for i in 0..n_pkts {
            w.post(Time::from_ns(i as u64 * 100), q, Packet::data(0, 1, 0, i as u64, 9000));
        }
        w.run_until_idle();
        let queue = w.get::<Queue>(q);
        // Occupancy never exceeded data-cap + header-cap bytes.
        prop_assert!(queue.stats.max_occupancy_bytes <= 8 * 9000 + 8 * 9000);
        // With no RTS target, any overflow shows as dropped_data; the sum
        // of outcomes equals the input.
        prop_assert_eq!(
            queue.stats.forwarded_pkts + queue.stats.dropped_data
                + queue.queued_packets() as u64,
            n_pkts as u64
        );
    }

    /// Retirement safety: under any interleaving of adds, retires and
    /// in-flight events, (a) a stale event is never delivered to a slot's
    /// new occupant, (b) every event sent to a live component arrives,
    /// (c) `ids()` / `try_get` exactly track the live population.
    #[test]
    fn retirement_never_misdelivers(ops in proptest::collection::vec(0u8..10, 1..80), seed in 0u64..1000) {
        use ndp::sim::{Component, ComponentId, Ctx, Event, World};
        use std::any::Any;
        /// Records every payload it receives; payloads encode the id the
        /// harness addressed, so misdelivery is detectable.
        struct Tagged { tag: u64, got: Vec<u64> }
        impl Component<u64> for Tagged {
            fn handle(&mut self, ev: Event<u64>, _ctx: &mut Ctx<'_, u64>) {
                if let Event::Msg(v) = ev { self.got.push(v); }
            }
            fn as_any(&self) -> &dyn Any { self }
            fn as_any_mut(&mut self) -> &mut dyn Any { self }
        }
        let mut w: World<u64> = World::new(seed);
        let mut live: Vec<(ComponentId, u64)> = Vec::new();
        let mut retired: Vec<(ComponentId, u64)> = Vec::new();
        // Events posted while a component was live but retired before the
        // run are stale too; track in-flight counts per target.
        let mut pending: std::collections::HashMap<ComponentId, u64> =
            std::collections::HashMap::new();
        let mut next_tag = 0u64;
        let mut expect_stale = 0u64;
        let mut t = 0u64;
        for &op in &ops {
            t += 1;
            match op {
                // Add a fresh component (reuses retired slots).
                0..=3 => {
                    let tag = { next_tag += 1; next_tag };
                    let id = w.add(Tagged { tag, got: vec![] });
                    live.push((id, tag));
                }
                // Retire one live component (round-robin victim); whatever
                // was already addressed to it must now be dropped.
                4..=5 => {
                    if !live.is_empty() {
                        let victim = live.remove(t as usize % live.len());
                        prop_assert!(w.retire(victim.0));
                        expect_stale += pending.remove(&victim.0).unwrap_or(0);
                        retired.push(victim);
                    }
                }
                // Post to a live component.
                6..=8 => {
                    if !live.is_empty() {
                        let (id, tag) = live[t as usize % live.len()];
                        w.post(ndp::sim::Time::from_us(t), id, tag);
                        *pending.entry(id).or_default() += 1;
                    }
                }
                // Post to a retired id: must vanish.
                _ => {
                    if !retired.is_empty() {
                        let (id, tag) = retired[t as usize % retired.len()];
                        w.post(ndp::sim::Time::from_us(t), id, tag);
                        expect_stale += 1;
                    }
                }
            }
        }
        let sent_live: u64 = pending.values().sum();
        w.run_until_idle();
        prop_assert_eq!(w.live_components(), live.len());
        let seen: Vec<ComponentId> = w.ids().collect();
        prop_assert_eq!(seen.len(), live.len());
        let mut delivered = 0u64;
        for &(id, tag) in &live {
            let c = w.try_get::<Tagged>(id).expect("live component visible");
            prop_assert_eq!(c.tag, tag);
            // Every payload delivered here was addressed to this tag.
            prop_assert!(c.got.iter().all(|&v| v == tag), "misdelivered: {:?}", c.got);
            delivered += c.got.len() as u64;
        }
        for &(id, _) in &retired {
            prop_assert!(w.try_get::<Tagged>(id).is_none(), "stale id resolved");
        }
        prop_assert_eq!(delivered, sent_live, "live sends must all arrive");
        prop_assert_eq!(w.stale_events_dropped(), expect_stale);
    }

    /// Fair-share fractions from the blast sink are within [0, ~1] for any
    /// sender count (no accounting leaks).
    #[test]
    fn blast_fair_share_bounded(n in 1usize..40, seed in 0u64..100) {
        let mut w: World<Packet> = World::new(seed);
        let sb = SingleBottleneck::build(&mut w, n, Speed::gbps(10), Time::from_us(1), 9000, QueueSpec::ndp_default());
        for s in 0..n {
            ndp::baselines::blast::attach_blast(
                &mut w,
                s as u64 + 1,
                (sb.senders[s], s as u32),
                (sb.receiver, n as u32),
                9000,
                Speed::gbps(10),
                Time::ZERO,
            );
        }
        let span = Time::from_ms(2);
        w.run_until(span);
        use ndp::net::Host;
        let host = w.get::<Host>(sb.receiver);
        let total: u64 = (1..=n as u64)
            .map(|f| host.endpoint::<ndp::baselines::blast::CountSink>(f).payload_bytes)
            .sum();
        let frac = ndp::baselines::blast::fair_share_fraction(total, 1, Speed::gbps(10), 9000, span);
        prop_assert!(frac <= 1.05, "goodput cannot exceed the link: {frac}");
        if n >= 1 {
            prop_assert!(frac > 0.5, "the link should be mostly busy: {frac}");
        }
    }
}

// ---------------------------------------------------------------------------
// Fused-vs-unfused A/B: folding wire propagation into the upstream queue's
// TX-done post must be observationally invisible — identical completion
// times, ordering and throughput — on every registered topology shape.

mod fused_unfused_ab {
    use ndp::experiments::harness::{incast_run, permutation_run};
    use ndp::experiments::{Proto, TopoSpec};
    use ndp::sim::{Speed, Time};
    use ndp::topology::{FatTreeCfg, LeafSpineCfg, TwoTierCfg};
    use proptest::prelude::*;

    /// (fused, unfused) spec pairs mirroring all six registry entries at
    /// quick scale (smaller where quick scale would make a dev-profile
    /// proptest case too slow).
    fn spec_pair(ti: usize) -> (TopoSpec, TopoSpec) {
        match ti {
            0 => (
                TopoSpec::fattree(FatTreeCfg::new(4)),
                TopoSpec::fattree(FatTreeCfg::new(4).unfused()),
            ),
            1 => (
                TopoSpec::leafspine(LeafSpineCfg::new(4, 4, 4)),
                TopoSpec::leafspine(LeafSpineCfg::new(4, 4, 4).unfused()),
            ),
            2 => (
                TopoSpec::fattree(FatTreeCfg::new(4).with_hosts_per_tor(8)),
                TopoSpec::fattree(FatTreeCfg::new(4).with_hosts_per_tor(8).unfused()),
            ),
            3 => (
                TopoSpec::leafspine(LeafSpineCfg::new(4, 4, 4).with_uplink_speed(Speed::gbps(5))),
                TopoSpec::leafspine(
                    LeafSpineCfg::new(4, 4, 4)
                        .with_uplink_speed(Speed::gbps(5))
                        .unfused(),
                ),
            ),
            4 => (
                TopoSpec::twotier(TwoTierCfg::testbed()),
                TopoSpec::twotier(TwoTierCfg::testbed().unfused()),
            ),
            _ => (TopoSpec::backtoback(), TopoSpec::backtoback_unfused()),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Incast completion times (and their order) are bit-identical
        /// with and without hop fusion, for every protocol family's
        /// fabric via NDP (the trimming fabric exercises the RNG-coupled
        /// paths hardest: trim coins, pull spraying, RTS bounces).
        #[test]
        fn incast_fcts_identical(ti in 0usize..6, seed in 0u64..1000) {
            let (fused, unfused) = spec_pair(ti);
            let n = (fused.n_hosts() - 1).min(8);
            let horizon = Time::from_ms(500);
            let a = incast_run(Proto::Ndp, fused, n, 45_000, None, seed, horizon);
            let b = incast_run(Proto::Ndp, unfused, n, 45_000, None, seed, horizon);
            prop_assert_eq!(a.incomplete, b.incomplete);
            prop_assert_eq!(a.fcts, b.fcts, "arrival-driven completions must match exactly");
        }

        /// Permutation throughput (per-flow goodput and utilization) is
        /// bit-identical with and without hop fusion.
        #[test]
        fn permutation_goodput_identical(ti in 0usize..6, seed in 0u64..1000) {
            let (fused, unfused) = spec_pair(ti);
            let dur = Time::from_us(500);
            let a = permutation_run(Proto::Ndp, fused, dur, seed, Some(12));
            let b = permutation_run(Proto::Ndp, unfused, dur, seed, Some(12));
            prop_assert_eq!(a.per_flow_gbps, b.per_flow_gbps);
            prop_assert_eq!(a.utilization, b.utilization);
            prop_assert!(
                a.events_processed < b.events_processed,
                "fusion must dispatch fewer events ({} vs {})",
                a.events_processed, b.events_processed
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Topology-registry invariants: every registered fabric shape must uphold the
// `Topology` contract the experiment harnesses build on.

mod topology_invariants {
    use ndp::experiments::topo::{TopoEntry, TOPOLOGIES};
    use ndp::experiments::{Proto, Scale};
    use ndp::net::{Host, Packet};
    use ndp::sim::{Time, World};
    use ndp::topology::{QueueSpec, Topology};
    use ndp::transport::FlowSpec;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn build(entry: &TopoEntry, fabric: QueueSpec) -> (World<Packet>, Box<dyn Topology>) {
        let mut w: World<Packet> = World::new(1);
        let topo = entry.spec(Scale::Quick).build(&mut w, fabric);
        (w, topo)
    }

    /// A deterministic (src, dst) pair with src != dst.
    fn pair(n: usize, seed: u64) -> (u32, u32) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let src = rng.gen_range(0..n);
        let dst = (src + 1 + rng.gen_range(0..n - 1)) % n;
        (src as u32, dst as u32)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Path and hop counts are symmetric, and a tagged raw packet
        /// injected at any source reaches the right destination for every
        /// valid path tag — on every registered topology.
        #[test]
        fn paths_are_symmetric_and_every_tag_delivers(
            ti in 0usize..TOPOLOGIES.len(),
            seed in 0u64..10_000,
        ) {
            let entry = &TOPOLOGIES[ti];
            let (mut w, topo) = build(entry, QueueSpec::ndp_default());
            let (src, dst) = pair(topo.n_hosts(), seed);
            prop_assert_eq!(
                topo.n_paths(src, dst), topo.n_paths(dst, src),
                "{}: n_paths asymmetric for ({}, {})", entry.name, src, dst
            );
            prop_assert_eq!(
                topo.n_hops(src, dst), topo.n_hops(dst, src),
                "{}: n_hops asymmetric for ({}, {})", entry.name, src, dst
            );
            prop_assert!(topo.n_paths(src, dst) >= 1);
            prop_assert_eq!(
                topo.n_hops(src, dst) as usize,
                topo.path_profile(src, dst).len(),
                "{}: hop count disagrees with the path profile", entry.name
            );
            let n_paths = topo.n_paths(src, dst);
            for tag in 0..n_paths {
                let pkt = Packet::data(src, dst, 1000 + tag as u64, 0, topo.mtu())
                    .with_path(tag);
                w.post(Time::ZERO, topo.host_nic(src), pkt);
            }
            w.run_until_idle();
            // No endpoints are registered, so deliveries land in the
            // unknown-flow counter — a delivery proof per tag.
            let h = w.get::<Host>(topo.host(dst));
            prop_assert_eq!(
                h.stats().unknown_flow_drops + h.stats().timewait_rejects,
                n_paths as u64,
                "{}: not every tag of ({}, {}) delivered", entry.name, src, dst
            );
        }

        /// `ideal_fct` is a true lower bound on an unloaded single-flow
        /// run for every registered topology — including the shapes with
        /// slow uplinks, whose bound comes from per-hop speeds.
        #[test]
        fn ideal_fct_is_a_lower_bound_on_an_unloaded_run(
            ti in 0usize..TOPOLOGIES.len(),
            seed in 0u64..10_000,
            size in 1u64..400_000,
        ) {
            let entry = &TOPOLOGIES[ti];
            let proto = Proto::Ndp;
            let (mut w, topo) = build(entry, proto.fabric());
            let (src, dst) = pair(topo.n_hosts(), seed);
            let spec = FlowSpec::new(1, src, dst, size);
            proto.transport().attach(
                &mut w,
                &spec,
                (topo.host(src), src),
                (topo.host(dst), dst),
                topo.n_paths(src, dst),
                topo.mtu(),
            );
            w.run_until(Time::from_secs(5));
            let done = proto
                .transport()
                .completion_time(&w, topo.host(dst), 1)
                .expect("unloaded flow must complete");
            let ideal = topo.ideal_fct(src, dst, size);
            prop_assert!(
                done >= ideal,
                "{}: measured FCT {} beat the 'ideal' bound {} for ({}, {}, {}B)",
                entry.name, done, ideal, src, dst, size
            );
        }
    }
}

mod chaos_invariants {
    use ndp::experiments::topo::{TopoEntry, TOPOLOGIES};
    use ndp::experiments::Scale;
    use ndp::net::{Host, LinkClass, Packet, Queue};
    use ndp::sim::{Time, World};
    use ndp::topology::{poisson_campaign, CampaignCfg, FabricOp, LinkRef, QueueSpec, Topology};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// The registry entries whose switches carry class-labeled uplinks and
    /// reroute-capable routers — the shapes the chaos subsystem targets.
    const MULTIPATH: &[&str] = &[
        "fattree",
        "leafspine",
        "oversubscribed",
        "leafspine-oversub",
    ];

    fn build(name: &str) -> (World<Packet>, Box<dyn Topology>) {
        let entry: &TopoEntry = TOPOLOGIES
            .iter()
            .find(|e| e.name == name)
            .expect("registered topology");
        let mut w: World<Packet> = World::new(1);
        let topo = entry
            .spec(Scale::Quick)
            .build(&mut w, QueueSpec::ndp_default());
        (w, topo)
    }

    /// Uplink indices grouped by owning switch: the label prefix before
    /// the final `[port]` (`"tor_up[3]"` collects all of `tor_up[3][..]`).
    fn uplinks_by_switch(links: &[LinkRef]) -> Vec<Vec<usize>> {
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, l) in links.iter().enumerate() {
            if !matches!(l.class, LinkClass::TorUp | LinkClass::AggUp) {
                continue;
            }
            let key = &l.label[..l.label.rfind('[').expect("uplink labels end in [port]")];
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        groups.into_iter().map(|(_, g)| g).collect()
    }

    /// A deterministic (src, dst) pair with src != dst.
    fn pair(n: usize, seed: u64) -> (u32, u32) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let src = rng.gen_range(0..n);
        let dst = (src + 1 + rng.gen_range(0..n - 1)) % n;
        (src as u32, dst as u32)
    }

    /// Inject one raw tagged packet per path of (src, dst) and run the
    /// world dry. With no endpoints registered, deliveries land in the
    /// destination host's unknown-flow counter — a proof per tag.
    fn inject_all_tags(
        w: &mut World<Packet>,
        topo: &dyn Topology,
        src: u32,
        dst: u32,
        base_flow: u64,
    ) {
        let at = w.now();
        for tag in 0..topo.n_paths(src, dst) {
            let pkt = Packet::data(src, dst, base_flow + tag as u64, 0, topo.mtu()).with_path(tag);
            w.post(at, topo.host_nic(src), pkt);
        }
        w.run_until_idle();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// After failing ANY strict per-switch subset of the uplinks, every
        /// path tag still delivers src -> dst (the switches reroute around
        /// the masked ports); after restoring, delivery still holds and the
        /// failed queues are back up at their nominal rates.
        #[test]
        fn every_path_delivers_during_failures_and_after_recovery(
            ni in 0usize..MULTIPATH.len(),
            seed in 0u64..10_000,
        ) {
            let (mut w, topo) = build(MULTIPATH[ni]);
            let links = topo.links();
            let groups = uplinks_by_switch(&links);
            prop_assert!(!groups.is_empty(), "{} exposes no uplinks", MULTIPATH[ni]);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xC4A0);
            let mut failed: Vec<usize> = Vec::new();
            for g in &groups {
                // A strict subset per switch: one uplink always survives,
                // so the reroute contract (a live equivalent exists) holds.
                let keep = rng.gen_range(0..g.len());
                for (i, &li) in g.iter().enumerate() {
                    if i != keep && rng.gen_bool(0.5) {
                        failed.push(li);
                    }
                }
            }
            if failed.is_empty() {
                // Keep the property non-vacuous: kill one uplink of the
                // first switch that has a spare.
                if let Some(g) = groups.iter().find(|g| g.len() >= 2) {
                    failed.push(g[0]);
                }
            }
            prop_assert!(!failed.is_empty());
            for &li in &failed {
                topo.fail_link(&mut w, links[li].queue);
            }
            let (src, dst) = pair(topo.n_hosts(), seed);
            let n_paths = topo.n_paths(src, dst) as u64;
            inject_all_tags(&mut w, topo.as_ref(), src, dst, 2_000);
            let delivered = |w: &World<Packet>| {
                let h = w.get::<Host>(topo.host(dst));
                h.stats().unknown_flow_drops + h.stats().timewait_rejects
            };
            prop_assert_eq!(
                delivered(&w), n_paths,
                "{}: not every tag of ({}, {}) delivered with {} uplinks down",
                MULTIPATH[ni], src, dst, failed.len()
            );
            for &li in &failed {
                topo.restore_link(&mut w, links[li].queue);
            }
            for &li in &failed {
                let q = w.get::<Queue>(links[li].queue);
                prop_assert!(!q.is_down(), "{} still down after restore", links[li].label);
                prop_assert_eq!(
                    q.rate(), q.nominal_rate(),
                    "{} not back at nominal rate", links[li].label
                );
            }
            inject_all_tags(&mut w, topo.as_ref(), src, dst, 3_000);
            prop_assert_eq!(
                delivered(&w), 2 * n_paths,
                "{}: delivery broken after recovery", MULTIPATH[ni]
            );
        }

        /// A Poisson campaign is (a) bit-identical per seed, (b) time-sorted,
        /// and (c) well-formed: every `LinkDown` hits a currently-up link of
        /// an eligible class inside [start, end), and is paired with a later
        /// `LinkUp` on the same link.
        #[test]
        fn poisson_campaigns_are_seed_deterministic_and_well_formed(
            seed in 0u64..u64::MAX,
            mtbf_us in 100u64..5_000,
            horizon_us in 500u64..20_000,
        ) {
            let (_w, topo) = build("fattree");
            let links = topo.links();
            let cfg = CampaignCfg {
                classes: vec![LinkClass::TorUp, LinkClass::AggUp],
                mtbf: Time::from_us(mtbf_us),
                mttr: Time::from_us(mtbf_us / 3 + 1),
                start: Time::ZERO,
                end: Time::from_us(horizon_us),
                seed,
            };
            let a = poisson_campaign(&links, &cfg);
            let b = poisson_campaign(&links, &cfg);
            prop_assert_eq!(&a, &b, "same seed must give the same schedule");
            let mut down: Vec<usize> = Vec::new();
            let mut last = Time::ZERO;
            for ev in &a {
                prop_assert!(ev.at >= last, "schedule must be time-sorted");
                last = ev.at;
                match ev.op {
                    FabricOp::LinkDown { link } => {
                        prop_assert!(ev.at < cfg.end, "failures only arrive in [start, end)");
                        prop_assert!(
                            matches!(links[link].class, LinkClass::TorUp | LinkClass::AggUp),
                            "campaign failed an ineligible link: {}", links[link].label
                        );
                        prop_assert!(!down.contains(&link), "double-killed a down link");
                        down.push(link);
                    }
                    FabricOp::LinkUp { link } => {
                        let i = down.iter().position(|&l| l == link);
                        prop_assert!(i.is_some(), "repair without a failure");
                        down.swap_remove(i.unwrap());
                    }
                    other => prop_assert!(false, "campaigns only emit link events, got {:?}", other),
                }
            }
            prop_assert!(down.is_empty(), "every failure must be paired with a repair");
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler delay-lane equivalence: the TwoTier scheduler with per-delay FIFO
// lanes must deliver in exactly the Classic heap's (time, posting-seq) order
// under arbitrary interleavings of hot repeated delays, same-instant trains,
// zero-delay forwards, partial drains, and retirement churn.

mod scheduler_lanes {
    use ndp::sim::{Component, ComponentId, Ctx, Event, SchedulerKind, Time, World};
    use proptest::prelude::*;
    use std::any::Any;

    /// Logs every arrival; when `peer` is set, forwards each payload with
    /// zero delay, exercising the fast lane from inside dispatch.
    struct Echo {
        peer: Option<ComponentId>,
        log: Vec<(Time, u64)>,
    }
    impl Component<u64> for Echo {
        fn handle(&mut self, ev: Event<u64>, ctx: &mut Ctx<'_, u64>) {
            if let Event::Msg(v) = ev {
                self.log.push((ctx.now(), v));
                if let Some(p) = self.peer {
                    ctx.send(p, v, Time::ZERO);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Hot repeats (lane-promotable), one exact wheel granule, a
    /// just-past-the-window delay, and two overflow-horizon delays.
    fn delay(r: u64) -> Time {
        match r % 9 {
            0 | 1 => Time::from_ns(100),
            2 | 3 => Time::from_ns(250),
            4 => Time::from_ns(777),
            5 => Time::from_ps(65_536),
            6 => Time::from_us(80),
            7 => Time::from_ms(3),
            _ => Time::from_secs(30),
        }
    }

    /// Everything observable about a run: per-component delivery logs
    /// (time + payload, in order), the trace hash, the dispatched-event
    /// count, and the stale-drop count.
    type Outcome = (Vec<Vec<(Time, u64)>>, (u64, u64), u64, u64);

    fn run(kind: SchedulerKind, lanes: bool, ops: &[u16]) -> Outcome {
        let mut w: World<u64> = World::with_scheduler_lanes(7, kind, lanes);
        w.enable_trace();
        let sink = w.add(Echo {
            peer: None,
            log: vec![],
        });
        let fwd = w.add(Echo {
            peer: Some(sink),
            log: vec![],
        });
        let mut retired: Vec<ComponentId> = Vec::new();
        let mut base = Time::ZERO;
        let mut tag = 0u64;
        for &x in ops {
            tag += 1;
            let (op, r) = (x % 12, (x / 12) as u64);
            match op {
                0..=2 => w.post(base + delay(r), sink, tag),
                // Through the forwarder: arrival triggers a zero-delay hop
                // from inside dispatch.
                3 | 4 => w.post(base + delay(r), fwd, tag),
                // Same-instant train; routed through the forwarder half the
                // time so one train spawns a run of zero-delay hops.
                5 | 6 => {
                    let to = if op == 6 { fwd } else { sink };
                    let msgs: Vec<u64> = (0..r % 4 + 1).map(|i| tag * 1000 + i).collect();
                    w.post_train(base + delay(r), to, msgs);
                }
                // Spawn-and-retire churn: the pre-retire post goes stale.
                7 => {
                    let victim = w.add(Echo {
                        peer: None,
                        log: vec![],
                    });
                    w.post(base + delay(r), victim, tag);
                    assert!(w.retire(victim));
                    retired.push(victim);
                }
                // Post to an already-retired id: stale on arrival.
                8 => {
                    if let Some(&id) = retired.last() {
                        w.post(base + delay(r), id, tag);
                    }
                }
                // Partial drain, then advance the posting base.
                9 | 10 => {
                    let h = base + Time::from_ns(1 + r * 7);
                    w.run_until(h);
                    base = h;
                }
                _ => w.shrink_idle(),
            }
        }
        w.run_until_idle();
        let logs = vec![
            w.get::<Echo>(sink).log.clone(),
            w.get::<Echo>(fwd).log.clone(),
        ];
        (
            logs,
            w.trace_hash(),
            w.events_processed(),
            w.stale_events_dropped(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Three worlds — Classic, TwoTier with lanes, TwoTier without —
        /// fed the same op script must agree on every delivery (time and
        /// order), the trace hash, the event count and the stale count.
        #[test]
        fn lanes_preserve_exact_delivery_order(
            ops in proptest::collection::vec(0u16..u16::MAX, 1..120),
        ) {
            let classic = run(SchedulerKind::Classic, false, &ops);
            let lanes_on = run(SchedulerKind::TwoTier, true, &ops);
            let lanes_off = run(SchedulerKind::TwoTier, false, &ops);
            prop_assert_eq!(&lanes_on, &classic, "TwoTier+lanes diverged from Classic");
            prop_assert_eq!(&lanes_off, &classic, "TwoTier w/o lanes diverged from Classic");
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-on vs lane-off A/B at the experiment level: delay lanes are a pure
// scheduler-internal reshuffling, so FCTs, goodput and even the dispatched
// event count must be bit-identical on every registered topology entry.

mod lane_ab {
    use ndp::experiments::harness::{incast_run, permutation_run};
    use ndp::experiments::{Proto, TopoSpec};
    use ndp::sim::{set_default_lanes, Speed, Time};
    use ndp::topology::{FatTreeCfg, LeafSpineCfg, TwoTierCfg};
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Serializes sections that flip the process-wide lane default, so the
    /// A and B runs of one case can't interleave with another case's flip.
    static LANE_TOGGLE: Mutex<()> = Mutex::new(());

    /// All six registered topology entries at quick scale.
    fn spec(ti: usize) -> TopoSpec {
        match ti {
            0 => TopoSpec::fattree(FatTreeCfg::new(4)),
            1 => TopoSpec::leafspine(LeafSpineCfg::new(4, 4, 4)),
            2 => TopoSpec::fattree(FatTreeCfg::new(4).with_hosts_per_tor(8)),
            3 => TopoSpec::leafspine(LeafSpineCfg::new(4, 4, 4).with_uplink_speed(Speed::gbps(5))),
            4 => TopoSpec::twotier(TwoTierCfg::testbed()),
            _ => TopoSpec::backtoback(),
        }
    }

    /// Runs `f` twice — lanes on, then off — restoring the on default.
    fn ab<T>(f: impl Fn() -> T) -> (T, T) {
        let _guard = LANE_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        set_default_lanes(true);
        let a = f();
        set_default_lanes(false);
        let b = f();
        set_default_lanes(true);
        (a, b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// Incast completion times are bit-identical with lanes on and
        /// off, on all six registered topology entries.
        #[test]
        fn incast_fcts_lane_invariant(seed in 0u64..1000) {
            for ti in 0..6 {
                let s = spec(ti);
                let n = (s.n_hosts() - 1).min(8);
                let horizon = Time::from_ms(500);
                let (a, b) =
                    ab(|| incast_run(Proto::Ndp, spec(ti), n, 45_000, None, seed, horizon));
                prop_assert_eq!(a.incomplete, b.incomplete, "topology {}", ti);
                prop_assert_eq!(a.fcts, b.fcts, "lane toggle changed FCTs on topology {}", ti);
                prop_assert_eq!(
                    a.events_processed, b.events_processed,
                    "lanes reorder nothing, so event counts must match (topology {})", ti
                );
            }
        }

        /// Permutation goodput and utilization are bit-identical with
        /// lanes on and off, on all six registered topology entries.
        #[test]
        fn permutation_goodput_lane_invariant(seed in 0u64..1000) {
            for ti in 0..6 {
                let dur = Time::from_us(500);
                let (a, b) = ab(|| permutation_run(Proto::Ndp, spec(ti), dur, seed, Some(12)));
                prop_assert_eq!(&a.per_flow_gbps, &b.per_flow_gbps, "topology {}", ti);
                prop_assert_eq!(a.utilization, b.utilization, "topology {}", ti);
                prop_assert_eq!(a.events_processed, b.events_processed, "topology {}", ti);
            }
        }
    }
}
