//! Telemetry subsystem integration tests.
//!
//! The contract under test, from both directions:
//!
//! * **Off ⇒ zero-cost**: flight hooks post no events and draw no RNG,
//!   so attaching them cannot move the golden trace hash, and a run with
//!   no active session produces bit-identical experiment results.
//! * **On ⇒ deterministic**: with a session active, the exported NDJSON
//!   bytes are identical across `NDP_THREADS` settings and across the
//!   two-tier and classic schedulers.
//!
//! The telemetry session and the default-scheduler knob are process
//! globals, so every test here serializes on one mutex.

use std::sync::{Arc, Mutex, MutexGuard};

use ndp::core::{attach_flow, NdpFlowCfg};
use ndp::experiments::{failure_matrix, Scale};
use ndp::net::flight::{FlightHook, FlightRecorder, HopKind};
use ndp::net::queue::Queue;
use ndp::net::switch::Switch;
use ndp::net::Packet;
use ndp::sim::world::{set_default_scheduler, SchedulerKind};
use ndp::sim::{Time, World};
use ndp::telemetry::{self, session, TelemetryConfig};
use ndp::topology::{FatTree, FatTreeCfg, Topology};

static GUARD: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match GUARD.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A small NDP run with the event trace enabled; optionally every queue
/// and switch carries a flight hook. Returns the trace hash and the
/// number of hop records captured.
fn hooked_world(kind: SchedulerKind, hooked: bool) -> ((u64, u64), usize) {
    let mut w: World<Packet> = World::with_scheduler(11, kind);
    w.enable_trace();
    let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
    let rec = Arc::new(Mutex::new(FlightRecorder::new(1 << 16)));
    if hooked {
        for (i, l) in ft.links().iter().enumerate() {
            let hook = FlightHook::new(Arc::clone(&rec), i as u32);
            w.get_mut::<Queue>(l.queue).set_flight_hook(Some(hook));
        }
        let ids: Vec<_> = w.ids().collect();
        for id in ids {
            if w.try_get::<Switch>(id).is_some() {
                let hook = FlightHook::new(Arc::clone(&rec), u32::MAX);
                w.get_mut::<Switch>(id).set_flight_hook(Some(hook));
            }
        }
    }
    for (i, &(src, dst)) in [(0u32, 9u32), (3, 12)].iter().enumerate() {
        let cfg = NdpFlowCfg {
            n_paths: ft.n_paths(src, dst),
            ..NdpFlowCfg::new(300_000)
        };
        attach_flow(
            &mut w,
            i as u64 + 1,
            (ft.hosts[src as usize], src),
            (ft.hosts[dst as usize], dst),
            cfg,
            Time::from_us(i as u64),
        );
    }
    w.run_until(Time::from_ms(10));
    let n = match rec.lock() {
        Ok(g) => g.len(),
        Err(p) => p.into_inner().len(),
    };
    (w.trace_hash(), n)
}

#[test]
fn flight_hooks_do_not_perturb_the_event_stream() {
    let _g = serialize();
    for kind in [SchedulerKind::TwoTier, SchedulerKind::Classic] {
        let (bare, none) = hooked_world(kind, false);
        let (instrumented, captured) = hooked_world(kind, true);
        assert_eq!(none, 0, "unhooked world must record nothing");
        assert!(captured > 0, "hooked world must capture hop records");
        assert_eq!(
            bare, instrumented,
            "{kind:?}: attaching flight hooks moved the trace hash"
        );
    }
}

#[test]
fn flight_recorder_sees_every_forwarded_packet() {
    let _g = serialize();
    let mut w: World<Packet> = World::new(3);
    let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
    let rec = Arc::new(Mutex::new(FlightRecorder::new(1 << 16)));
    for (i, l) in ft.links().iter().enumerate() {
        let hook = FlightHook::new(Arc::clone(&rec), i as u32);
        w.get_mut::<Queue>(l.queue).set_flight_hook(Some(hook));
    }
    attach_flow(
        &mut w,
        1,
        (ft.hosts[0], 0),
        (ft.hosts[9], 9),
        NdpFlowCfg {
            n_paths: ft.n_paths(0, 9),
            ..NdpFlowCfg::new(90_000)
        },
        Time::ZERO,
    );
    w.run_until(Time::from_ms(5));
    let rec = rec.lock().unwrap();
    let enq = rec.records().filter(|r| r.kind == HopKind::Enqueue).count();
    let deq = rec.records().filter(|r| r.kind == HopKind::Dequeue).count();
    assert!(enq > 0, "no enqueue hops captured");
    assert!(deq > 0, "no dequeue hops captured");
    // Every record belongs to the only flow in the world.
    assert!(rec.records().all(|r| r.flow == 1));
    // An unloaded fabric forwards everything it accepts.
    assert_eq!(enq, deq, "enqueue/dequeue mismatch on an idle fabric");
}

/// Run the quick failure matrix under an active session and export it.
fn capture_ndjson(threads: &str, kind: SchedulerKind) -> (String, String) {
    std::env::set_var("NDP_THREADS", threads);
    set_default_scheduler(kind);
    session::begin(TelemetryConfig::default());
    let report = failure_matrix::run(Scale::Quick, None);
    let (_, points) = session::end().expect("session was active");
    std::env::remove_var("NDP_THREADS");
    set_default_scheduler(SchedulerKind::TwoTier);
    assert!(!points.is_empty(), "failure matrix submitted no telemetry");
    (telemetry::write_ndjson(&points), report.headline())
}

#[test]
fn telemetry_on_trace_is_byte_identical_across_threads_and_schedulers() {
    let _g = serialize();
    let (serial, headline_serial) = capture_ndjson("1", SchedulerKind::TwoTier);
    let (threaded, headline_threaded) = capture_ndjson("7", SchedulerKind::TwoTier);
    assert_eq!(
        serial, threaded,
        "NDJSON bytes changed with the worker thread count"
    );
    assert_eq!(headline_serial, headline_threaded);
    let (classic, _) = capture_ndjson("3", SchedulerKind::Classic);
    assert_eq!(
        serial, classic,
        "NDJSON bytes changed with the engine scheduler"
    );
    // The capture is substantive: gauges, spans, and down-link hop
    // records all present, so a tail flow is attributable to the failure.
    assert!(serial.contains("\"gauge\":\"queue\""));
    assert!(serial.contains("\"type\":\"span\""));
    assert!(serial.contains("\"kind\":\"drop_down\""));
}

#[test]
fn tracing_does_not_change_experiment_results() {
    let _g = serialize();
    std::env::set_var("NDP_THREADS", "2");
    let plain = failure_matrix::run(Scale::Quick, None).headline();
    session::begin(TelemetryConfig::default());
    let traced = failure_matrix::run(Scale::Quick, None).headline();
    let (_, points) = session::end().expect("session was active");
    std::env::remove_var("NDP_THREADS");
    assert_eq!(
        plain, traced,
        "an active telemetry session changed experiment results"
    );
    assert!(points.iter().any(|p| !p.spans.is_empty()));
    assert!(points.iter().any(|p| !p.hops.is_empty()));
    assert!(points.iter().any(|p| !p.gauges.is_empty()));
    // No session active afterwards: the next runner sees telemetry off.
    assert!(session::active().is_none());
}
