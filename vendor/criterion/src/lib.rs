//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the surface the bench crate uses — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark prints `name: mean time/iter (iters)` and, like the real
//! crate, honours a substring filter passed on the command line
//! (`cargo bench -- engine`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body.
pub struct Bencher {
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
    target_time: Duration,
    sample_size: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up (also primes lazy state so timing excludes it).
        black_box(body());
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..self.sample_size {
                black_box(body());
            }
            iters += self.sample_size;
            if start.elapsed() >= self.target_time {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Top-level handle, also usable directly via [`Criterion::bench_function`].
pub struct Criterion {
    filter: Option<String>,
    measurement_time: Duration,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` forwards everything after `--`; ignore
        // flag-like arguments the real criterion accepts (e.g. `--bench`).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            measurement_time: Duration::from_secs(1),
            sample_size: 1,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            measurement_time: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let time = self.measurement_time;
        let sample = self.sample_size;
        self.run_one(name, time, sample, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        time: Duration,
        sample_size: u64,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            result: None,
            target_time: time,
            sample_size,
        };
        f(&mut b);
        match b.result {
            Some((elapsed, iters)) if iters > 0 => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<40} {} /iter ({iters} iters)", fmt_ns(per));
            }
            _ => println!("{name:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} us", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns")
    }
}

/// Group of related benchmarks; settings apply to members run through it.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let time = self
            .measurement_time
            .unwrap_or(self.parent.measurement_time);
        let sample = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&full, time, sample, f);
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("work", |b| b.iter(|| black_box(21u64) * 2));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1u64) + 1));
    }

    #[test]
    fn macros_and_groups_run() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            result: None,
            target_time: Duration::from_millis(1),
            sample_size: 4,
        };
        b.iter(|| black_box(3u32).pow(2));
        let (elapsed, iters) = b.result.expect("measured");
        assert!(iters >= 4 && iters % 4 == 0);
        assert!(elapsed >= Duration::from_millis(1));
    }
}
