//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, integer and
//! float range strategies, [`collection::vec`], and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is no shrinking: each test runs its cases
//! from a deterministic per-test seed, and a failing case panics with the
//! case number so it can be replayed by reducing `with_cases`.

use rand::rngs::SmallRng;

/// A source of random test inputs.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, len_range)` — a `Vec` whose length is drawn
    /// from `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test path so every test
/// gets an independent, stable stream.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one: default config. (`#[test]` is matched as part of the
    // attribute list and re-emitted with it.)
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*);
    };
    // One test item at a time.
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut __proptest_rng =
                    <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(
                        seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let _ = &case;
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in 0.25f64..0.5, mut v in collection::vec(0u32..4, 1..9)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.5).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 9);
            v.sort_unstable();
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn inclusive_ranges_hit_both_ends(y in 0usize..=1) {
            prop_assert!(y <= 1);
        }
    }

    #[test]
    fn seeds_differ_per_test_path() {
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
    }
}
