//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact surface it uses: [`rngs::SmallRng`] (xoshiro256++, the same
//! algorithm `rand 0.8` uses for `SmallRng` on 64-bit targets, seeded via
//! SplitMix64 like `seed_from_u64` upstream), the [`Rng`] extension trait
//! with `gen`/`gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! Determinism contract: this generator defines the bit-exact event traces
//! that the golden-trace tests pin. Changing the algorithm or the
//! seeding path invalidates every committed trace hash — treat both as
//! frozen.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is provided; the workspace
/// never seeds from byte arrays.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be drawn uniformly from the generator's full range
/// (the shim's analogue of `Standard`-distribution sampling).
pub trait Standard: Sized {
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a span.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_span(rng: &mut dyn RngCore, lo: Self, hi_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span(rng: &mut dyn RngCore, lo: $t, hi_excl: $t) -> $t {
                debug_assert!(lo < hi_excl, "gen_range: empty range");
                let span = (hi_excl - lo) as u64;
                // Lemire multiply-shift; the bias for simulation-scale spans
                // (< 2^32) is far below one part in 2^32.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_span(rng: &mut dyn RngCore, lo: f64, hi_excl: f64) -> f64 {
        debug_assert!(lo < hi_excl, "gen_range: empty range");
        lo + f64::draw(rng) * (hi_excl - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_span(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range (e.g. 0..=u64::MAX): every value.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_enough_for_simulation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
